"""Operating-point policies: the decision layer of the adaptive runtime.

A policy closes the paper's Section VI-C loop at run time: every window
it observes the node's state — battery state of charge, last window's
output quality, a cheap environmental stress hint — and picks one rung
of the mission's *operating-point ladder* (the voltage x EMT lattice,
energy-sorted ascending, so "step up" always means "spend more for more
reliability").

Shipped policies:

* ``static`` — one fixed rung; the paper's design-time answer and the
  baseline every adaptive policy is judged against;
* ``quality`` — reactive threshold control on the observed quality:
  degrade a window, climb a rung; exceed the target comfortably, descend;
* ``soc`` — a battery-state-of-charge scheduler that spends charge on
  quality while the cell is full and throttles as it empties;
* ``hysteresis`` — a dead-band controller with an optional feed-forward
  term on the stress hint: it climbs immediately on degradation (or on a
  sensed stress episode, *before* processing the window) but descends
  only after the quality has held above the upper band for a dwell,
  suppressing the oscillation pure threshold control exhibits.

Custom policies register with :func:`register_policy` and then work
everywhere — the simulator, the ``mission`` campaign evaluator kind and
the CLI — by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..errors import MissionError

__all__ = [
    "LadderPoint",
    "PolicyContext",
    "Observation",
    "Policy",
    "StaticPolicy",
    "QualityThresholdPolicy",
    "SoCSchedulerPolicy",
    "HysteresisPolicy",
    "POLICIES",
    "register_policy",
    "make_policy",
    "policy_from_dict",
    "policy_from_token",
]


@dataclass(frozen=True)
class LadderPoint:
    """One rung of the energy-sorted operating-point ladder.

    Attributes:
        index: position in the ladder (0 = cheapest).
        emt_name: protection scheme at this rung.
        voltage: data-memory supply voltage.
        energy_per_window_pj: predicted memory-system energy of one
            processing window at this rung.
    """

    index: int
    emt_name: str
    voltage: float
    energy_per_window_pj: float

    @property
    def label(self) -> str:
        """Short ``emt@V`` form used in reports and share tables."""
        return f"{self.emt_name}@{self.voltage:.2f}"


@dataclass(frozen=True)
class PolicyContext:
    """What a policy may know about the mission before it starts."""

    ladder: tuple[LadderPoint, ...]
    window_s: float
    quality_floor_db: float
    snr_cap_db: float

    @property
    def n_levels(self) -> int:
        """Number of ladder rungs."""
        return len(self.ladder)

    def top(self) -> int:
        """Index of the most capable (most expensive) rung."""
        return len(self.ladder) - 1


@dataclass(frozen=True)
class Observation:
    """Per-window runtime state presented to a policy.

    Attributes:
        window_index: zero-based window number.
        time_s: mission time at the window's start.
        soc: battery state of charge in ``[0, 1]``.
        last_snr_db: previous window's output quality (None on the first
            window — nothing has been processed yet).
        stress_hint: noisy observation of the environment's stress level
            for the *upcoming* window (sensed before processing).
        current_index: ladder rung the node is currently configured for.
    """

    window_index: int
    time_s: float
    soc: float
    last_snr_db: float | None
    stress_hint: float
    current_index: int


class Policy(ABC):
    """Base class of operating-point policies.

    Lifecycle: the simulator calls :meth:`reset` once with the mission's
    :class:`PolicyContext`, then :meth:`decide` once per window.  The
    returned rung index is clamped to the ladder by the simulator, so
    policies may step past the ends without guarding.
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self.context: PolicyContext | None = None

    def reset(self, context: PolicyContext) -> None:
        """Bind the policy to a mission's ladder; clears internal state."""
        if not context.ladder:
            raise MissionError("policy context has an empty ladder")
        self.context = context

    @abstractmethod
    def decide(self, obs: Observation) -> int:
        """Choose the ladder rung for the window ``obs`` describes."""

    def describe(self) -> str:
        """Human-readable label for reports (default: the registry name)."""
        return self.name

    def _require_context(self) -> PolicyContext:
        if self.context is None:
            raise MissionError(
                f"policy {self.name!r} used before reset(context)"
            )
        return self.context


#: Registry of policy classes, populated by :func:`register_policy`.
POLICIES: dict[str, type[Policy]] = {}


def register_policy(cls: type[Policy]) -> type[Policy]:
    """Class decorator registering a policy under its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise MissionError("a registered policy needs a concrete name")
    if cls.name in POLICIES:
        raise MissionError(f"policy {cls.name!r} already registered")
    POLICIES[cls.name] = cls
    return cls


def make_policy(name: str, **params: Any) -> Policy:
    """Instantiate a registered policy by name."""
    if name not in POLICIES:
        raise MissionError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        )
    try:
        return POLICIES[name](**params)
    except TypeError as exc:
        raise MissionError(
            f"bad parameters for policy {name!r}: {exc}"
        ) from exc


def policy_from_dict(payload: str | dict[str, Any]) -> Policy:
    """Build a policy from its campaign form.

    Accepts a bare registry name or ``{"name": ..., "params": {...}}`` —
    the JSON-safe shape mission campaign grids sweep.
    """
    if isinstance(payload, str):
        return make_policy(payload)
    try:
        name = payload["name"]
    except (KeyError, TypeError) as exc:
        raise MissionError(
            f"policy payload needs a 'name': {payload!r}"
        ) from exc
    return make_policy(name, **payload.get("params", {}))


def policy_from_token(token: str) -> Policy:
    """Parse a CLI policy token.

    ``"hysteresis"`` is a bare registry name; ``"static:dream@0.65"``
    pins the static policy to an operating point.
    """
    name, _, arg = token.partition(":")
    name = name.strip()
    if not arg:
        return make_policy(name)
    if name != "static":
        raise MissionError(
            f"only 'static' takes an operating-point argument, got {token!r}"
        )
    emt_name, sep, voltage = arg.partition("@")
    if not sep:
        raise MissionError(
            f"static operating point must be 'emt@voltage', got {arg!r}"
        )
    try:
        return StaticPolicy(emt=emt_name.strip(), voltage=float(voltage))
    except ValueError as exc:
        raise MissionError(f"bad voltage in {token!r}: {exc}") from exc


def _fraction_to_index(fraction: float, n_levels: int) -> int:
    """Map a ladder fraction in [0, 1] to the nearest rung index."""
    return max(0, min(n_levels - 1, round(fraction * (n_levels - 1))))


@register_policy
class StaticPolicy(Policy):
    """The design-time answer: one fixed operating point.

    Pin the rung with ``emt``/``voltage`` (resolved against the ladder at
    reset) or ``index``; with neither, the top (most capable) rung is
    used — the conservative product default.
    """

    name = "static"

    def __init__(
        self,
        emt: str | None = None,
        voltage: float | None = None,
        index: int | None = None,
    ) -> None:
        super().__init__()
        if index is not None and (emt is not None or voltage is not None):
            raise MissionError(
                "give either an index or an (emt, voltage) pair, not both"
            )
        if (emt is None) != (voltage is None):
            raise MissionError(
                "emt and voltage must be given together"
            )
        self._emt = emt
        self._voltage = voltage
        self._requested_index = index
        self._index = 0

    def reset(self, context: PolicyContext) -> None:
        super().reset(context)
        if self._emt is not None:
            for point in context.ladder:
                if (
                    point.emt_name == self._emt
                    and abs(point.voltage - float(self._voltage)) < 1e-9
                ):
                    self._index = point.index
                    break
            else:
                raise MissionError(
                    f"operating point {self._emt}@{self._voltage} is not on "
                    f"the ladder: {[p.label for p in context.ladder]}"
                )
        elif self._requested_index is not None:
            if not 0 <= self._requested_index < context.n_levels:
                raise MissionError(
                    f"ladder index {self._requested_index} out of range "
                    f"[0, {context.n_levels})"
                )
            self._index = self._requested_index
        else:
            self._index = context.top()

    def decide(self, obs: Observation) -> int:
        self._require_context()
        return self._index

    def describe(self) -> str:
        context = self.context
        if context is not None:
            return f"static:{context.ladder[self._index].label}"
        if self._emt is not None:
            return f"static:{self._emt}@{self._voltage:.2f}"
        return "static"


@register_policy
class QualityThresholdPolicy(Policy):
    """Reactive threshold control on the observed window quality.

    If the last window degraded below ``target_db``, climb one rung; if
    it exceeded ``target_db + margin_db``, descend one.  Purely reactive:
    the first window of a disturbance is always processed at the old
    rung, which is the lag the hysteresis controller's feed-forward term
    removes.
    """

    name = "quality"

    def __init__(self, target_db: float = 40.0, margin_db: float = 30.0):
        super().__init__()
        if margin_db < 0:
            raise MissionError(
                f"margin must be non-negative, got {margin_db}"
            )
        self.target_db = target_db
        self.margin_db = margin_db

    def decide(self, obs: Observation) -> int:
        self._require_context()
        if obs.last_snr_db is None:
            return obs.current_index
        if obs.last_snr_db < self.target_db:
            return obs.current_index + 1
        if obs.last_snr_db > self.target_db + self.margin_db:
            return obs.current_index - 1
        return obs.current_index


@register_policy
class SoCSchedulerPolicy(Policy):
    """Battery-state-of-charge scheduler.

    ``bands`` maps a minimum state of charge to a ladder fraction,
    descending: with the default ``((0.5, 1.0), (0.2, 0.5), (0.0, 0.0))``
    the node runs the top rung while more than half the charge remains,
    the mid-ladder down to 20 %, and the cheapest rung on the last dregs
    — graceful quality degradation instead of an early death.
    """

    name = "soc"

    def __init__(
        self,
        bands: tuple[tuple[float, float], ...] = (
            (0.5, 1.0),
            (0.2, 0.5),
            (0.0, 0.0),
        ),
    ) -> None:
        super().__init__()
        bands = tuple((float(s), float(f)) for s, f in bands)
        if not bands:
            raise MissionError("the scheduler needs at least one band")
        if any(not 0.0 <= s <= 1.0 or not 0.0 <= f <= 1.0 for s, f in bands):
            raise MissionError(
                f"band thresholds and fractions must be in [0, 1]: {bands}"
            )
        if list(bands) != sorted(bands, key=lambda b: -b[0]):
            raise MissionError(
                f"bands must be sorted by descending SoC threshold: {bands}"
            )
        if bands[-1][0] != 0.0:
            raise MissionError("the last band must cover SoC 0.0")
        self.bands = bands

    def decide(self, obs: Observation) -> int:
        context = self._require_context()
        for min_soc, fraction in self.bands:
            if obs.soc >= min_soc:
                return _fraction_to_index(fraction, context.n_levels)
        return 0  # pragma: no cover - last band covers soc 0


@register_policy
class HysteresisPolicy(Policy):
    """Dead-band controller with stress feed-forward.

    Control law, evaluated before each window:

    * feed-forward: if the stress hint is at or above
      ``stress_threshold``, jump to at least the ``stress_fraction``
      rung *now* — the disturbance is handled before it corrupts a
      window;
    * climb: if the last window fell below ``low_db``, step up one rung;
    * descend: only after the quality has held above ``high_db`` for
      ``dwell`` consecutive windows, step down one rung.

    The asymmetric band plus the dwell is what keeps the switch count
    low: threshold controllers without it oscillate around the band
    edge, and every switch costs reconfiguration energy on real silicon.
    """

    name = "hysteresis"

    def __init__(
        self,
        low_db: float = 35.0,
        high_db: float = 70.0,
        dwell: int = 5,
        stress_threshold: float = 0.5,
        stress_fraction: float = 1.0,
    ) -> None:
        super().__init__()
        if high_db < low_db:
            raise MissionError(
                f"dead band is inverted: low {low_db} > high {high_db}"
            )
        if dwell < 1:
            raise MissionError(f"dwell must be >= 1, got {dwell}")
        if not 0.0 <= stress_fraction <= 1.0:
            raise MissionError(
                f"stress fraction must be in [0, 1], got {stress_fraction}"
            )
        self.low_db = low_db
        self.high_db = high_db
        self.dwell = dwell
        self.stress_threshold = stress_threshold
        self.stress_fraction = stress_fraction
        self._held = 0

    def reset(self, context: PolicyContext) -> None:
        super().reset(context)
        self._held = 0

    def decide(self, obs: Observation) -> int:
        context = self._require_context()
        if obs.stress_hint >= self.stress_threshold:
            self._held = 0
            floor = _fraction_to_index(
                self.stress_fraction, context.n_levels
            )
            return max(obs.current_index, floor)
        if obs.last_snr_db is None:
            return obs.current_index
        if obs.last_snr_db < self.low_db:
            self._held = 0
            return obs.current_index + 1
        if obs.last_snr_db > self.high_db:
            self._held += 1
            if self._held >= self.dwell:
                self._held = 0
                return obs.current_index - 1
        else:
            self._held = 0
        return obs.current_index


#: Convenience alias: signature of a policy factory.
PolicyFactory = Callable[[], Policy]
