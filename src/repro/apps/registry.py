"""Application registry used by the experiment drivers.

``PAPER_APPS`` holds the five Section II case studies in the order the
paper presents them; ``EXTENSION_APPS`` the additional consumers built on
top (not part of Fig 2 / Fig 4).
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import ExperimentError
from .base import BiomedicalApp
from .classifier import HeartbeatClassifierApp
from .compressed_sensing import CompressedSensingApp
from .delineation import WaveletDelineationApp
from .dwt import DwtApp
from .matrix_filter import MatrixFilterApp
from .morphology import MorphologicalFilterApp

__all__ = ["PAPER_APPS", "EXTENSION_APPS", "make_app", "cached_app"]


#: The paper's five case studies (Section II), keyed by registry name.
PAPER_APPS: dict[str, type[BiomedicalApp]] = {
    "dwt": DwtApp,
    "matrix_filter": MatrixFilterApp,
    "compressed_sensing": CompressedSensingApp,
    "morphology": MorphologicalFilterApp,
    "delineation": WaveletDelineationApp,
}

#: Applications built on top of the case studies (Section III narrative).
EXTENSION_APPS: dict[str, type[BiomedicalApp]] = {
    "classifier": HeartbeatClassifierApp,
}


def make_app(name: str, **kwargs) -> BiomedicalApp:
    """Instantiate a registered application by name."""
    registry = {**PAPER_APPS, **EXTENSION_APPS}
    if name not in registry:
        raise ExperimentError(
            f"unknown application {name!r}; available: {sorted(registry)}"
        )
    return registry[name](**kwargs)


@lru_cache(maxsize=16)
def cached_app(name: str) -> BiomedicalApp:
    """A shared per-process instance with default construction arguments.

    Applications are deterministic and their only mutable state is the
    clean-reference memo, so sharing one instance lets every driver in a
    process reuse the (expensive) reference outputs instead of re-running
    the clean pipeline per invocation.  Use :func:`make_app` when custom
    constructor arguments or instance isolation are needed.
    """
    return make_app(name)
