"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fft"])

    def test_csv_arguments(self):
        args = build_parser().parse_args(
            ["fig2", "--apps", "dwt, morphology", "--records", "100"]
        )
        assert args.apps == ("dwt", "morphology")
        assert args.records == ("100",)

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.runs == 12
        assert args.emts == ("none", "dream", "secded")


class TestCommands:
    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "DREAM 5, ECC 6" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "paper: ~34%" in out and "paper: ~55%" in out

    def test_record(self, capsys):
        assert main(["record", "106", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "record 106" in out
        assert "360 Hz" in out

    def test_record_unknown_returns_error(self, capsys):
        assert main(["record", "999"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fig2_small(self, capsys):
        assert main([
            "fig2", "--apps", "morphology",
            "--records", "100", "--duration", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "stuck-at-1" in out and "stuck-at-0" in out

    def test_fig4_small(self, capsys):
        assert main([
            "fig4", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig 4.a" in out and "Fig 4.b" in out and "Fig 4.c" in out

    def test_tradeoff_small(self, capsys):
        assert main([
            "tradeoff", "--app", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2", "--tolerance", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "Section VI-C" in out
        assert "12.7" in out  # paper-example table is always appended

    def test_lifetime(self, capsys):
        assert main(["lifetime", "--voltage", "0.65", "--emt", "dream"]) == 0
        out = capsys.readouterr().out
        assert "lifetime" in out
        assert "dream @ 0.65 V" in out

    def test_lifetime_unknown_emt(self, capsys):
        assert main(["lifetime", "--emt", "bch"]) == 1
        assert "error:" in capsys.readouterr().err
