"""Full WBSN pipeline on the MPSoC substrate — the paper's Fig 1 in code.

A wireless body-sensor node acquires ECG, cleans it, extracts heartbeat
features, classifies beats, and compresses the stream for transmission.
This example runs that chain with every buffer in the voltage-scaled
shared memory protected by DREAM, then replays the recorded memory trace
on the VirtualSOC-lite platform (4 ARM-class cores, 16-bank crossbar,
200 MHz) and prints the cycle, conflict and energy budget.

Run:  python examples/wbsn_pipeline.py [voltage]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps import (
    CompressedSensingApp,
    HeartbeatClassifierApp,
    MorphologicalFilterApp,
)
from repro.apps.delineation import NO_POINT
from repro.emt import DreamEMT
from repro.energy import EnergySystemModel, TECH_32NM_LP
from repro.energy.accounting import Workload
from repro.mem import MemoryFabric, sample_fault_map
from repro.mem.layout import PAPER_GEOMETRY
from repro.signals import load_record
from repro.soc import SoCConfig, SoCSimulator, tasks_from_fabric


def main(voltage: float = 0.70) -> None:
    record = load_record("119", duration_s=16.0)  # trigeminal PVCs
    emt = DreamEMT()
    ber = TECH_32NM_LP.ber(voltage)
    rng = np.random.default_rng(7)
    fault_map = sample_fault_map(PAPER_GEOMETRY.n_words, emt.stored_bits,
                                 ber, rng)
    fabric = MemoryFabric(emt, fault_map=fault_map, record_trace=True)
    print(f"WBSN node: memory at {voltage:.2f} V (BER {ber:.1e}), "
          f"DREAM-protected, record 119 ({len(record.labels)} beats)\n")

    # Stage 1 - morphological cleanup (baseline + noise removal).
    cleaner = MorphologicalFilterApp()
    cleaned = cleaner.run(record.samples, fabric)
    print(f"1. morphology  : cleaned {cleaned.size} samples "
          f"(SNR vs clean run {cleaner.output_snr(record.samples, cleaned):.1f} dB)")

    # Stage 2 - delineation + classification on the cleaned signal.
    classifier = HeartbeatClassifierApp()
    labels = classifier.run(cleaned, fabric)
    found = labels[labels != NO_POINT]
    names = {0: "N", 1: "V", 2: "A"}
    counts = {names[k]: int((found == k).sum()) for k in names}
    print(f"2. classifier  : {found.size} beats classified {counts}")

    # Stage 3 - compressed sensing of the cleaned stream for the radio.
    cs = CompressedSensingApp()
    measurements = cs.run(cleaned, fabric)
    print(f"3. compression : {cleaned.size} samples -> "
          f"{measurements.size} words for transmission "
          f"(reconstruction SNR {cs.output_snr(cleaned, measurements):.1f} dB)")

    # Replay the recorded memory trace on the MPSoC platform.
    config = SoCConfig(n_cores=4)
    tasks = tasks_from_fabric(fabric, config)
    report = SoCSimulator(config).run(tasks)
    print(f"\nplatform replay on {config.n_cores} cores @ 200 MHz:")
    print(f"  {report.n_accesses} memory accesses in {report.cycles} cycles "
          f"({report.duration_s * 1e3:.2f} ms active)")
    print(f"  bank conflicts: {report.conflicts} "
          f"({report.conflicts / max(report.n_accesses, 1) * 100:.1f}% of accesses)")

    workload = Workload(
        n_reads=fabric.stats.data_reads,
        n_writes=fabric.stats.data_writes,
        duration_s=report.duration_s,
    )
    breakdown = EnergySystemModel(emt).evaluate(voltage, workload)
    print(f"  memory-system energy: {breakdown.total_pj / 1e6:.2f} uJ "
          f"(data {breakdown.data_dynamic_pj / 1e6:.2f}, "
          f"mask {breakdown.side_dynamic_pj / 1e6:.2f}, "
          f"logic {breakdown.logic_dynamic_pj / 1e6:.2f}, "
          f"leakage {(breakdown.data_leakage_pj + breakdown.side_leakage_pj + breakdown.logic_leakage_pj) / 1e6:.2f})")
    print(f"  decoder repaired {fabric.stats.decode.corrected} words on read")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.70)
