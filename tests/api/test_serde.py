"""The consolidated serde layer: one source of truth, unchanged bytes."""

from __future__ import annotations

import json
import tomllib

import numpy as np
import pytest

import repro.campaign as campaign
import repro.campaign.evaluators as evaluators
from repro.api import serde
from repro.energy.accounting import Workload
from repro.energy.technology import TECH_32NM_LP
from repro.errors import CampaignError, ExperimentSpecError
from repro.mem.layout import PAPER_GEOMETRY, MemoryGeometry


class TestConsolidation:
    """The historical homes re-export the shared implementations."""

    def test_campaign_spec_reexports_canonicalisation(self):
        assert campaign.canonical_json is serde.canonical_json
        assert campaign.content_hash is serde.content_hash

    def test_evaluators_reexport_model_serde(self):
        assert evaluators.technology_to_dict is serde.technology_to_dict
        assert evaluators.technology_from_dict is serde.technology_from_dict
        assert evaluators.geometry_to_dict is serde.geometry_to_dict
        assert evaluators.geometry_from_dict is serde.geometry_from_dict
        assert evaluators.workload_to_dict is serde.workload_to_dict
        assert evaluators.workload_from_dict is serde.workload_from_dict

    def test_store_keys_unchanged_by_the_move(self):
        """The canonical form (and hence every store key) is pinned."""
        payload = {"b": (1, 2), "a": {"x": np.float64(0.65)}}
        assert serde.canonical_json(payload) == '{"a":{"x":0.65},"b":[1,2]}'
        assert serde.content_hash({"kind": "montecarlo", "params": {}}) == (
            serde.content_hash({"params": {}, "kind": "montecarlo"})
        )

    def test_unserialisable_value_raises_campaign_error(self):
        with pytest.raises(CampaignError, match="not JSON-serialisable"):
            serde.canonical_json({"x": object()})


class TestModelSerde:
    def test_technology_roundtrip(self):
        payload = serde.technology_to_dict(TECH_32NM_LP)
        assert json.loads(json.dumps(payload)) == payload
        assert serde.technology_from_dict(payload) == TECH_32NM_LP
        assert serde.technology_from_dict(None) == TECH_32NM_LP

    def test_geometry_roundtrip(self):
        geometry = MemoryGeometry(n_words=256, word_bits=16, n_banks=4)
        assert serde.geometry_from_dict(
            serde.geometry_to_dict(geometry)
        ) == geometry
        assert serde.geometry_from_dict(None) == PAPER_GEOMETRY

    def test_workload_roundtrip(self):
        workload = Workload(n_reads=10, n_writes=20, duration_s=0.5)
        assert serde.workload_from_dict(
            serde.workload_to_dict(workload)
        ) == workload


class TestMixes:
    def test_parse_and_format_roundtrip(self):
        mix = serde.parse_mix("active_day:0.7, overnight:0.3")
        assert mix == (("active_day", 0.7), ("overnight", 0.3))
        assert serde.parse_mix(serde.format_mix(mix)) == mix

    def test_value_type_coercion(self):
        assert serde.parse_mix("1.5:0.6,2.5:0.4", float) == (
            (1.5, 0.6), (2.5, 0.4)
        )

    def test_missing_weight_rejected(self):
        with pytest.raises(ExperimentSpecError, match="name:weight"):
            serde.parse_mix("active_day")

    def test_bad_weight_rejected(self):
        with pytest.raises(ExperimentSpecError, match="bad mix entry"):
            serde.parse_mix("active_day:lots")


class TestPolicyTokens:
    def test_bare_name_stays_string(self):
        assert serde.policy_payload("hysteresis") == "hysteresis"

    def test_static_operating_point(self):
        assert serde.policy_payload("static:dream@0.65") == {
            "name": "static",
            "params": {"emt": "dream", "voltage": 0.65},
        }

    def test_malformed_operating_point_rejected(self):
        with pytest.raises(ExperimentSpecError, match="emt@voltage"):
            serde.policy_payload("static:dream")
        with pytest.raises(ExperimentSpecError, match="bad voltage"):
            serde.policy_payload("static:dream@low")

    def test_labels(self):
        assert serde.policy_label("soc") == "soc"
        assert serde.policy_label({"name": "static"}) == "static"
        assert serde.policy_label(
            {"name": "static", "params": {"emt": "dream", "voltage": 0.65}}
        ) == "static(emt=dream,voltage=0.65)"


class TestTomlEmitter:
    PAYLOAD = {
        "version": 1,
        "kind": "mission",
        "name": "quoted \"name\" with \\ and unicode µ",
        "flag": True,
        "ratio": 0.5,
        "count": 3,
        "big": 1e20,
        "mission": {
            "policies": [
                "static-ladder",
                {"name": "static", "params": {"index": 0}},
            ],
            "nested": {"pairs": [["a", 0.7], ["b", 0.3]]},
        },
    }

    def test_roundtrip_is_exact(self):
        text = serde.dumps_toml(self.PAYLOAD)
        assert tomllib.loads(text) == self.PAYLOAD

    def test_floats_stay_floats_and_ints_stay_ints(self):
        parsed = tomllib.loads(serde.dumps_toml({"f": 2.0, "i": 2}))
        assert isinstance(parsed["f"], float)
        assert isinstance(parsed["i"], int)

    def test_numpy_values_canonicalise(self):
        text = serde.dumps_toml({"v": np.float64(0.65), "a": np.arange(3)})
        assert tomllib.loads(text) == {"v": 0.65, "a": [0, 1, 2]}

    def test_null_rejected_with_location(self):
        with pytest.raises(ExperimentSpecError, match="mission.window"):
            serde.dumps_toml({"mission": {"window": None}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ExperimentSpecError, match="must be a mapping"):
            serde.dumps_toml([1, 2, 3])


class TestFileIO:
    def test_suffix_dispatch(self, tmp_path):
        payload = {"version": 1, "x": [1.5, 2.0]}
        serde.dump_payload(payload, tmp_path / "p.toml")
        serde.dump_payload(payload, tmp_path / "p.json")
        assert serde.load_payload(tmp_path / "p.toml") == payload
        assert serde.load_payload(tmp_path / "p.json") == payload

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ExperimentSpecError, match="suffix"):
            serde.load_payload(tmp_path / "p.yaml")
        with pytest.raises(ExperimentSpecError, match="suffix"):
            serde.dump_payload({}, tmp_path / "p.yaml")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ExperimentSpecError, match="cannot read"):
            serde.load_payload(tmp_path / "absent.toml")

    def test_malformed_content_rejected(self, tmp_path):
        (tmp_path / "bad.toml").write_text("= not toml", encoding="utf-8")
        with pytest.raises(ExperimentSpecError, match="not valid TOML"):
            serde.load_payload(tmp_path / "bad.toml")
        (tmp_path / "bad.json").write_text("{", encoding="utf-8")
        with pytest.raises(ExperimentSpecError, match="not valid JSON"):
            serde.load_payload(tmp_path / "bad.json")

    def test_non_mapping_document_rejected(self, tmp_path):
        (tmp_path / "list.json").write_text("[1]", encoding="utf-8")
        with pytest.raises(ExperimentSpecError, match="mapping"):
            serde.load_payload(tmp_path / "list.json")
