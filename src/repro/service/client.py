"""Client side of the experiment service.

:class:`ServiceClient` talks the daemon's one-JSON-line-per-connection
unix-socket protocol for everything that needs a live daemon (submit,
cancel, shutdown, ping) and reads the shared filesystem directly for
everything that does not: job status and listings come from the job
journal, progress streams from the job's JSONL trace, and results from
the ordinary campaign stores — so a finished job remains fully
inspectable and fetchable with the daemon down.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Iterator

from ..api.schema import Experiment, load_experiment
from ..api.session import Session
from ..errors import ServiceError
from ..obs.registry import pid_alive
from ..obs.watch import TraceTail
from .daemon import (
    ExperimentService,
    SOCKET_BASENAME,
    default_service_root,
)
from .queue import JobQueue, JobRecord

__all__ = ["ServiceClient"]


class ServiceClient:
    """Submit, track, cancel, and fetch experiment-service jobs.

    Args:
        root: the daemon's service root directory (default
            :func:`~repro.service.daemon.default_service_root`, which
            honours ``REPRO_SERVICE_DIR`` — point both the daemon and
            its clients at the same root).
        timeout_s: per-request socket timeout.
    """

    def __init__(
        self, root: Path | str | None = None, timeout_s: float = 10.0
    ) -> None:
        self.root = Path(root) if root is not None else default_service_root()
        self.timeout_s = timeout_s
        self.queue = JobQueue(self.root)

    # -- discovery ---------------------------------------------------------

    def meta(self) -> dict[str, Any] | None:
        """The daemon's discovery record (survives daemon exit)."""
        return ExperimentService.read_meta(self.root)

    def alive(self) -> bool:
        """Whether a daemon process currently owns this service root."""
        meta = self.meta()
        if meta is None:
            return False
        pid = int(meta.get("pid", 0))
        return pid > 0 and pid_alive(pid)

    def socket_path(self) -> Path:
        """The daemon's unix-socket path (from its discovery file)."""
        meta = self.meta()
        if meta is not None and meta.get("socket"):
            return Path(meta["socket"])
        return self.root / SOCKET_BASENAME

    # -- the wire ----------------------------------------------------------

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One request/response exchange with the live daemon."""
        path = self.socket_path()
        payload = {"op": op, **fields}
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
                conn.settimeout(self.timeout_s)
                conn.connect(str(path))
                conn.sendall(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                chunks: list[bytes] = []
                while b"\n" not in (chunks[-1] if chunks else b""):
                    data = conn.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
        except OSError as exc:
            raise ServiceError(
                f"service daemon not reachable at {path} "
                f"({type(exc).__name__}: {exc}); start one with "
                "'repro serve'"
            ) from exc
        raw = b"".join(chunks).decode("utf-8", errors="replace").strip()
        if not raw:
            raise ServiceError(
                f"service daemon at {path} closed the connection "
                "without replying"
            )
        try:
            response = json.loads(raw.splitlines()[0])
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed service response: {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServiceError("malformed service response: not an object")
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "service request failed"))
            )
        return response

    def ping(self) -> dict[str, Any]:
        """The daemon's identity and queue headline."""
        return self.request("ping")

    # -- submission --------------------------------------------------------

    def submit(
        self,
        experiment: Experiment | Path | str | dict[str, Any],
        priority: int = 0,
    ) -> tuple[JobRecord, bool]:
        """Submit one experiment; returns ``(job, created)``.

        Accepts an :class:`~repro.api.schema.Experiment`, a path to an
        experiment file, or a raw payload mapping.  The job id is the
        experiment's content-hash run id, so resubmitting identical
        work is a no-op (``created=False``) while it is queued, in
        flight, or done.
        """
        if isinstance(experiment, (str, Path)):
            experiment = load_experiment(experiment)
        if isinstance(experiment, Experiment):
            payload = experiment.to_payload()
        else:
            payload = dict(experiment)
        response = self.request(
            "submit", kind="experiment", payload=payload, priority=priority
        )
        return JobRecord.from_dict(response["job"]), bool(
            response["created"]
        )

    def submit_campaign(
        self, payload: dict[str, Any], priority: int = 0
    ) -> tuple[JobRecord, bool]:
        """Submit one pre-built campaign job payload (see
        :func:`~repro.service.daemon.campaign_job_payload`)."""
        response = self.request(
            "submit", kind="campaign", payload=payload, priority=priority
        )
        return JobRecord.from_dict(response["job"]), bool(
            response["created"]
        )

    # -- tracking ----------------------------------------------------------

    def status(self, job_id: str) -> JobRecord:
        """One job's latest journal state (works with the daemon down)."""
        record = self.queue.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return record

    def jobs(
        self, status: str | None = None, kind: str | None = None,
        limit: int | None = None,
    ) -> list[JobRecord]:
        """Journal listing, newest first (works with the daemon down)."""
        return self.queue.jobs(status=status, kind=kind, limit=limit)

    def wait(
        self,
        job_id: str,
        timeout_s: float | None = None,
        poll_s: float = 0.2,
    ) -> JobRecord:
        """Block until the job reaches a terminal state.

        Raises :class:`~repro.errors.ServiceError` on timeout, and —
        rather than waiting forever — when the daemon dies while the
        job is still non-terminal (a restarted daemon will requeue it;
        simply call :meth:`wait` again once one is up).
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            record = self.status(job_id)
            if record.terminal:
                return record
            if not self.alive():
                raise ServiceError(
                    f"service daemon died while job {job_id} was "
                    f"{record.status}; restart it with 'repro serve' "
                    "to resume"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (status {record.status})"
                )
            time.sleep(poll_s)

    def progress_stream(
        self,
        job_id: str,
        poll_s: float = 0.2,
        timeout_s: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's progress heartbeats until it is terminal.

        The stream is the job trace's ``run.progress`` gauge events
        (the same heartbeats ``repro watch`` renders), each yielded as
        its raw event dict — ``value`` is the completed-point count and
        ``attrs.total`` the grid size.  Ends when the job reaches a
        terminal journal state; raises on timeout.
        """
        record = self.status(job_id)
        trace_path = record.meta.get("trace_path")
        tail = TraceTail(trace_path) if trace_path else None
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            if tail is not None:
                for event in tail.poll():
                    if (
                        event.get("event") == "metric"
                        and event.get("name") == "run.progress"
                    ):
                        yield event
            record = self.status(job_id)
            if record.terminal:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s streaming job {job_id}"
                )
            time.sleep(poll_s)

    # -- mutation ----------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job — via the daemon when one is alive, else
        directly in the journal (the shared-root offline path)."""
        if self.alive():
            response = self.request("cancel", job_id=job_id)
            return JobRecord.from_dict(response["job"])
        return self.queue.cancel(job_id)

    def shutdown(
        self, wait: bool = True, timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Ask the daemon to drain in-flight jobs and exit."""
        response = self.request("shutdown")
        if wait:
            deadline = time.monotonic() + timeout_s
            while self.alive():
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"daemon still running {timeout_s}s after "
                        "shutdown was requested"
                    )
                time.sleep(0.1)
        return response

    # -- results -----------------------------------------------------------

    def fetch(self, job_id: str):
        """The finished experiment job's lazy
        :class:`~repro.api.results.ResultHandle`.

        Re-attaches to the stores the job wrote (via
        :meth:`~repro.api.session.Session.attach`), so the handle is
        bit-identical to what an inline ``Session.run`` of the same
        experiment would return — and needs no live daemon.
        """
        from ..api.schema import experiment_from_payload

        record = self.status(job_id)
        if record.kind != "experiment":
            raise ServiceError(
                f"job {job_id} is a {record.kind} job; fetch its records "
                "from its result store instead"
            )
        if record.status not in ("done", "failed"):
            raise ServiceError(
                f"job {job_id} is {record.status}; results can be "
                "fetched once it is done"
            )
        experiment = experiment_from_payload(record.payload)
        store_dir = record.meta.get("store_dir")
        return Session(store_dir=store_dir).attach(experiment)
