"""The durable job queue behind the experiment service.

One append-only JSONL journal (``<service root>/jobs.jsonl``) records
every state transition of every job the daemon ever accepted.  The
write discipline is PR 9's crash-consistency contract, shared with the
campaign result store through :func:`repro.campaign.store.locked_append`:
one ``flock``-serialised append per transition, a torn tail (a writer
killed mid-line) is sealed by the next append and quarantined on load,
and the *last* record per job id wins — so the journal is both the
queue and its own audit log, and a SIGKILLed daemon loses at most the
single transition it was writing.

Job lifecycle::

    queued -> claimed -> running -> done | failed
    queued -> cancelled

``claimed`` means the scheduler handed the job to the worker fleet;
``running`` means a worker process announced it picked the job up (the
journal then carries that worker's pid as ``owner_pid``).  Higher
``priority`` jobs are handed out first; ties break by submission time
then job id, so dispatch order is deterministic.  Submission is
idempotent: job ids derive from content hashes (an experiment's run id,
a campaign payload's digest), and resubmitting an id that is already
queued, in flight, or done returns the existing job — only ``failed``
and ``cancelled`` jobs are re-queued by a resubmission.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..campaign.store import locked_append, quarantine_torn_lines
from ..errors import ServiceError
from ..obs.registry import pid_alive

__all__ = [
    "JOB_STATUSES",
    "JOB_KINDS",
    "TERMINAL_STATUSES",
    "JobRecord",
    "JobQueue",
]

#: Every valid job lifecycle state, in lifecycle order.
JOB_STATUSES = (
    "queued", "claimed", "running", "done", "failed", "cancelled",
)

#: States a job never leaves.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Kinds of work the service executes.
JOB_KINDS = ("experiment", "campaign")

#: The journal file's name inside a service root directory.
JOURNAL_BASENAME = "jobs.jsonl"


@dataclass(frozen=True)
class JobRecord:
    """One job's journal entry (the latest appended state wins).

    Attributes:
        job_id: content-hash-derived identity — an experiment's run id
            (:meth:`repro.api.session.Session.run_id_for`) or a
            campaign payload digest.  Doubles as the trace/registry run
            id, so ``repro watch <job id>`` works on service jobs.
        kind: ``"experiment"`` or ``"campaign"``.
        name: display name (the experiment or campaign name).
        payload: the JSON-safe work description (a dumped experiment,
            or a campaign spec + explicit points).
        priority: higher dispatches first (default 0).
        status: current lifecycle state.
        submitted_at / updated_at: wall-clock unix seconds.
        owner_pid: the process responsible for the job right now — the
            daemon while ``queued``/``claimed``, the executing worker
            while ``running``.  Dead-owner detection keys off this.
        requeues: times the job was recovered/requeued after a crash.
        error: failure text when ``status == "failed"``.
        result: JSON-safe outcome summary recorded at completion.
        meta: service-side annotations (store directory, trace path)
            stamped at submission so clients can fetch results with the
            daemon down.
    """

    job_id: str
    kind: str
    name: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    status: str = "queued"
    submitted_at: float = 0.0
    updated_at: float = 0.0
    owner_pid: int | None = None
    requeues: int = 0
    error: str | None = None
    result: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        """Whether the job's state can never change again."""
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form — exactly what one journal line carries."""
        record: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "name": self.name,
            "payload": self.payload,
            "priority": self.priority,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "requeues": self.requeues,
            "meta": dict(self.meta),
        }
        if self.owner_pid is not None:
            record["owner_pid"] = self.owner_pid
        if self.error is not None:
            record["error"] = self.error
        if self.result is not None:
            record["result"] = self.result
        return record

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        """Rebuild a record from one parsed journal line."""
        return cls(
            job_id=str(payload["job_id"]),
            kind=str(payload.get("kind", "experiment")),
            name=str(payload.get("name", "")),
            payload=dict(payload.get("payload", {})),
            priority=int(payload.get("priority", 0)),
            status=str(payload.get("status", "queued")),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            updated_at=float(payload.get("updated_at", 0.0)),
            owner_pid=payload.get("owner_pid"),
            requeues=int(payload.get("requeues", 0)),
            error=payload.get("error"),
            result=payload.get("result"),
            meta=dict(payload.get("meta", {})),
        )


def _valid_line(payload: Any) -> bool:
    """A journal line is usable when it names a job id and a status."""
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("job_id"), str)
        and payload["job_id"] != ""
        and payload.get("status") in JOB_STATUSES
    )


class JobQueue:
    """The durable job journal of one service root directory.

    Every mutation is one locked append; reads fold the journal with
    last-record-per-job-id-wins semantics.  Multiple processes may read
    concurrently with the daemon's writes (``repro jobs`` works with
    the daemon down or mid-write); writes are expected from the daemon
    and — for offline cancellation — a client holding the same root.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.path = self.root / JOURNAL_BASENAME

    # -- writes ------------------------------------------------------------

    def _append(self, record: JobRecord) -> JobRecord:
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        locked_append(self.path, line.encode("utf-8"))
        return record

    def submit(
        self,
        job_id: str,
        kind: str,
        payload: dict[str, Any],
        name: str = "",
        priority: int = 0,
        meta: dict[str, Any] | None = None,
    ) -> tuple[JobRecord, bool]:
        """Enqueue a job; returns ``(record, created)``.

        Idempotent on ``job_id``: an id that is already queued, in
        flight, or done returns its existing record with
        ``created=False`` (content-hash ids make "same submission"
        decidable).  A ``failed`` or ``cancelled`` id is re-queued
        fresh — resubmission is the retry mechanism.
        """
        if not job_id:
            raise ServiceError("job id must be non-empty")
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"job kind must be one of {JOB_KINDS}, got {kind!r}"
            )
        existing = self.get(job_id)
        if existing is not None and existing.status not in (
            "failed", "cancelled",
        ):
            return existing, False
        now = time.time()
        record = JobRecord(
            job_id=job_id,
            kind=kind,
            name=name,
            payload=payload,
            priority=priority,
            status="queued",
            submitted_at=now,
            updated_at=now,
            requeues=existing.requeues if existing is not None else 0,
            meta=dict(meta or {}),
        )
        return self._append(record), True

    def mark(
        self,
        job_id: str,
        status: str,
        owner_pid: int | None = None,
        error: str | None = None,
        result: dict[str, Any] | None = None,
        requeued: bool = False,
    ) -> JobRecord:
        """Append a state transition, carrying identity fields forward."""
        if status not in JOB_STATUSES:
            raise ServiceError(
                f"job status must be one of {JOB_STATUSES}, got {status!r}"
            )
        previous = self.get(job_id)
        if previous is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return self._append(
            replace(
                previous,
                status=status,
                updated_at=time.time(),
                owner_pid=owner_pid,
                error=error,
                result=result,
                requeues=previous.requeues + (1 if requeued else 0),
            )
        )

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job that has not started; terminal is idempotent.

        Only ``queued`` jobs are cancellable — once the scheduler hands
        a job to the fleet it runs to completion (its results are
        idempotent and content-addressed, so finishing is always safe).
        Cancelling an already-``cancelled`` job is a no-op.
        """
        record = self.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        if record.status == "cancelled":
            return record
        if record.status != "queued":
            raise ServiceError(
                f"job {job_id} is {record.status}; only queued jobs can "
                "be cancelled"
            )
        return self.mark(job_id, "cancelled")

    def recover(self) -> list[JobRecord]:
        """Requeue every job a dead daemon left in flight.

        Called once at daemon startup, before any scheduling: a fresh
        daemon has no workers, so *every* ``claimed``/``running`` job
        in the journal is orphaned — its supervising loop is gone and
        its outcome can never be recorded, even if an orphaned worker
        process is still finishing (whose store appends are harmless:
        records are content-addressed, so a re-run is bit-identical).
        Returns the requeued records.
        """
        requeued = []
        for record in self.load().values():
            if record.status not in ("claimed", "running"):
                continue
            requeued.append(
                self.mark(record.job_id, "queued", requeued=True)
            )
        return requeued

    # -- reads -------------------------------------------------------------

    def load(self) -> dict[str, JobRecord]:
        """All jobs, keyed by job id — the last record per id wins.

        Torn or structurally invalid lines are quarantined (to
        ``jobs.jsonl.quarantine``) and skipped, never fatal — a killed
        writer must not brick the queue.
        """
        if not self.path.is_file():
            return {}
        jobs: dict[str, JobRecord] = {}
        torn: list[str] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                torn.append(line)
                continue
            if not _valid_line(payload):
                torn.append(line)
                continue
            record = JobRecord.from_dict(payload)
            jobs[record.job_id] = record
        if torn:
            quarantine_torn_lines(self.path, torn)
        return jobs

    def get(self, job_id: str) -> JobRecord | None:
        """The latest record of one job, or ``None``."""
        return self.load().get(job_id)

    def jobs(
        self,
        status: str | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[JobRecord]:
        """Filtered job records, newest submission first."""
        if status is not None and status not in JOB_STATUSES:
            raise ServiceError(
                f"unknown job status {status!r}; valid: {JOB_STATUSES}"
            )
        selected = [
            record
            for record in self.load().values()
            if (status is None or record.status == status)
            and (kind is None or record.kind == kind)
        ]
        selected.sort(
            key=lambda record: (-record.submitted_at, record.job_id)
        )
        if limit is not None:
            selected = selected[: max(0, limit)]
        return selected

    def pending(self) -> list[JobRecord]:
        """Queued jobs in dispatch order: priority, then age, then id."""
        queued = [
            record
            for record in self.load().values()
            if record.status == "queued"
        ]
        queued.sort(
            key=lambda record: (
                -record.priority, record.submitted_at, record.job_id,
            )
        )
        return queued

    def stale_owner(self, record: JobRecord) -> bool:
        """Whether an in-flight job's owner process is provably dead."""
        return (
            record.status in ("claimed", "running")
            and record.owner_pid is not None
            and not pid_alive(record.owner_pid)
        )

    def __len__(self) -> int:
        return len(self.load())
