"""The declarative, versioned :class:`Experiment` schema.

One :class:`Experiment` describes any workload the repo can run:

* ``kind = "figure"`` — a paper artefact (:class:`Fig2Params`,
  :class:`Fig4Params`, :class:`EnergyParams`, :class:`TradeoffParams`);
* ``kind = "sweep"`` — a voltage x EMT x application Monte-Carlo
  campaign with Pareto/trade-off extraction (:class:`SweepParams`);
* ``kind = "mission"`` — a closed-loop adaptive-runtime policy
  comparison on one scenario (:class:`MissionParams`);
* ``kind = "cohort"`` — a population fleet simulation
  (:class:`CohortParams`).

Experiments load from TOML or JSON files (:func:`load_experiment`) and
dump back (:func:`dump_experiment`); the payload form is canonicalised
through the same :func:`repro.api.serde.canonical_json` machinery the
campaign stores key by, so an experiment has a stable
:meth:`Experiment.content_hash` and a dump -> reload round trip is bit
identical.  Schema versioning is strict: a payload must declare
``version = 1`` and unknown versions (or unknown keys anywhere) are
rejected with a clear error before anything runs.

The file layout mirrors the dataclasses::

    version = 1
    kind = "sweep"
    name = "paper-sweep"
    seed = 7            # optional: master Monte-Carlo seed
    workers = 4         # optional: default worker count
    backend = "multiprocessing"   # optional: execution backend
    store = "paper-sweep"         # optional: result-store basename

    [sweep]
    apps = ["dwt"]
    emts = ["none", "dream", "secded"]
    voltages = [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9]
    runs = 6
    tolerance_db = 5.0

Defaults match the historical CLI subcommands flag for flag, so a file
with only the keys you care about reproduces what the equivalent
``repro sweep``/``repro mission``/... invocation always did (the
golden-equivalence tests pin this).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, ClassVar, Union

from ..energy.technology import PAPER_VOLTAGE_GRID
from ..errors import ExperimentSpecError
from . import serde

__all__ = [
    "SCHEMA_VERSION",
    "EXPERIMENT_KINDS",
    "PAPER_APP_NAMES",
    "Fig2Params",
    "Fig4Params",
    "EnergyParams",
    "TradeoffParams",
    "FigureParams",
    "SweepParams",
    "MissionParams",
    "CohortParams",
    "Experiment",
    "experiment_from_payload",
    "load_experiment",
    "dump_experiment",
]

#: The schema version this build reads and writes.
SCHEMA_VERSION = 1

#: The paper's five case-study applications (the figure-driver default).
PAPER_APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)

#: Fig 4's three techniques, the default EMT comparison everywhere.
_DEFAULT_EMTS = ("none", "dream", "secded")

#: The historical CLI record/duration defaults (``--records``/``--duration``).
_DEFAULT_RECORDS = ("100", "106")
_DEFAULT_DURATION_S = 8.0


# --------------------------------------------------------------------------
# Payload coercion helpers (shared by every params class)
# --------------------------------------------------------------------------


def _fail(where: str, message: str) -> ExperimentSpecError:
    return ExperimentSpecError(f"{where}: {message}")


def _check_keys(payload: Mapping[str, Any], allowed: tuple, where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise _fail(
            where,
            f"unknown keys {unknown}; allowed: {sorted(allowed)}",
        )


def _str_tuple(value: Any, where: str) -> tuple[str, ...]:
    if isinstance(value, str):
        return tuple(v.strip() for v in value.split(",") if v.strip())
    try:
        return tuple(str(v) for v in value)
    except TypeError as exc:
        raise _fail(where, f"expected a list of strings, got {value!r}") from exc


def _float_tuple(value: Any, where: str) -> tuple[float, ...]:
    try:
        return tuple(float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise _fail(where, f"expected a list of numbers, got {value!r}") from exc


def _float(value: Any, where: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise _fail(where, f"expected a number, got {value!r}") from exc


def _int(value: Any, where: str) -> int:
    if isinstance(value, bool):
        raise _fail(where, f"expected an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise _fail(where, f"expected an integer, got {value!r}")


def _mix(value: Any, where: str, value_type=str) -> tuple:
    """Coerce a mix given as ``"a:0.7,b:0.3"`` or ``[["a", 0.7], ...]``."""
    if isinstance(value, str):
        return serde.parse_mix(value, value_type)
    try:
        return tuple(
            (value_type(name), float(weight)) for name, weight in value
        )
    except (TypeError, ValueError) as exc:
        raise _fail(
            where,
            "expected 'name:weight,...' or [[name, weight], ...] pairs, "
            f"got {value!r}",
        ) from exc


def _policies(value: Any, where: str) -> tuple:
    """Coerce a policy list: tokens and/or ``{"name", "params"}`` dicts."""
    if isinstance(value, str):
        value = _str_tuple(value, where)
    out = []
    for item in value:
        if isinstance(item, str):
            out.append(item.strip())
        elif isinstance(item, Mapping):
            if "name" not in item:
                raise _fail(where, f"policy mapping needs a 'name': {item!r}")
            out.append(
                {
                    "name": str(item["name"]),
                    "params": dict(item.get("params", {})),
                }
            )
        else:
            raise _fail(
                where,
                f"policies are tokens or {{name, params}} mappings, "
                f"got {item!r}",
            )
    if not out:
        raise _fail(where, "at least one policy is required")
    return tuple(out)


def _mix_payload(mix: tuple) -> list:
    return [[name, weight] for name, weight in mix]


# --------------------------------------------------------------------------
# Kind-specific parameter blocks
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig2Params:
    """Fig 2 bit-significance sweep (``figure = "fig2"``).

    Attributes:
        apps: applications to characterise.
        records: catalog records averaged over.
        duration_s: seconds of each record to process.
    """

    KIND: ClassVar[str] = "fig2"

    apps: tuple[str, ...] = PAPER_APP_NAMES
    records: tuple[str, ...] = _DEFAULT_RECORDS
    duration_s: float = _DEFAULT_DURATION_S

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], where: str) -> "Fig2Params":
        """Parse the ``[figure]`` section keys applicable to fig 2."""
        _check_keys(payload, ("figure", "apps", "records", "duration_s"), where)
        kwargs: dict[str, Any] = {}
        if "apps" in payload:
            kwargs["apps"] = _str_tuple(payload["apps"], f"{where}.apps")
        if "records" in payload:
            kwargs["records"] = _str_tuple(payload["records"], f"{where}.records")
        if "duration_s" in payload:
            kwargs["duration_s"] = _float(
                payload["duration_s"], f"{where}.duration_s"
            )
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[figure]`` section, fully resolved."""
        return {
            "figure": self.KIND,
            "apps": list(self.apps),
            "records": list(self.records),
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class Fig4Params:
    """Fig 4 SNR-vs-voltage Monte-Carlo sweep (``figure = "fig4"``).

    Attributes:
        apps / emts / voltages: the (app, EMT, voltage) grid; EMTs share
            each run's defect sample, per the paper's fairness rule.
        records / duration_s: the averaged signal corpus.
        runs: Monte-Carlo runs per grid point (the paper uses 200).
    """

    KIND: ClassVar[str] = "fig4"

    apps: tuple[str, ...] = PAPER_APP_NAMES
    emts: tuple[str, ...] = _DEFAULT_EMTS
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID
    records: tuple[str, ...] = _DEFAULT_RECORDS
    duration_s: float = _DEFAULT_DURATION_S
    runs: int = 12

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], where: str) -> "Fig4Params":
        """Parse the ``[figure]`` section keys applicable to fig 4."""
        _check_keys(
            payload,
            ("figure", "apps", "emts", "voltages", "records", "duration_s",
             "runs"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "apps" in payload:
            kwargs["apps"] = _str_tuple(payload["apps"], f"{where}.apps")
        if "emts" in payload:
            kwargs["emts"] = _str_tuple(payload["emts"], f"{where}.emts")
        if "voltages" in payload:
            kwargs["voltages"] = _float_tuple(
                payload["voltages"], f"{where}.voltages"
            )
        if "records" in payload:
            kwargs["records"] = _str_tuple(payload["records"], f"{where}.records")
        if "duration_s" in payload:
            kwargs["duration_s"] = _float(
                payload["duration_s"], f"{where}.duration_s"
            )
        if "runs" in payload:
            kwargs["runs"] = _int(payload["runs"], f"{where}.runs")
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[figure]`` section, fully resolved."""
        return {
            "figure": self.KIND,
            "apps": list(self.apps),
            "emts": list(self.emts),
            "voltages": list(self.voltages),
            "records": list(self.records),
            "duration_s": self.duration_s,
            "runs": self.runs,
        }


@dataclass(frozen=True)
class EnergyParams:
    """Section VI-B energy/area analysis (``figure = "energy"``).

    Attributes:
        emts / voltages: the (EMT, voltage) accounting grid.
        workload_app / workload_record / workload_duration_s: the
            application run the memory-activity workload is measured
            from (the historical ``repro energy`` defaults).
    """

    KIND: ClassVar[str] = "energy"

    emts: tuple[str, ...] = _DEFAULT_EMTS
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID
    workload_app: str = "dwt"
    workload_record: str = "100"
    workload_duration_s: float = 10.0

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], where: str) -> "EnergyParams":
        """Parse the ``[figure]`` section keys applicable to energy."""
        _check_keys(
            payload,
            ("figure", "emts", "voltages", "workload_app", "workload_record",
             "workload_duration_s"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "emts" in payload:
            kwargs["emts"] = _str_tuple(payload["emts"], f"{where}.emts")
        if "voltages" in payload:
            kwargs["voltages"] = _float_tuple(
                payload["voltages"], f"{where}.voltages"
            )
        if "workload_app" in payload:
            kwargs["workload_app"] = str(payload["workload_app"])
        if "workload_record" in payload:
            kwargs["workload_record"] = str(payload["workload_record"])
        if "workload_duration_s" in payload:
            kwargs["workload_duration_s"] = _float(
                payload["workload_duration_s"], f"{where}.workload_duration_s"
            )
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[figure]`` section, fully resolved."""
        return {
            "figure": self.KIND,
            "emts": list(self.emts),
            "voltages": list(self.voltages),
            "workload_app": self.workload_app,
            "workload_record": self.workload_record,
            "workload_duration_s": self.workload_duration_s,
        }


@dataclass(frozen=True)
class TradeoffParams:
    """Section VI-C quality/energy trade-off (``figure = "tradeoff"``).

    Attributes:
        app: the application setting the quality requirement.
        emts: candidate techniques.
        records / duration_s / runs: the Fig 4 sweep the policy derives
            from.
        tolerance_db: allowed degradation below the error-free ceiling.
    """

    KIND: ClassVar[str] = "tradeoff"

    app: str = "dwt"
    emts: tuple[str, ...] = _DEFAULT_EMTS
    records: tuple[str, ...] = _DEFAULT_RECORDS
    duration_s: float = _DEFAULT_DURATION_S
    runs: int = 12
    tolerance_db: float = 1.0

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], where: str
    ) -> "TradeoffParams":
        """Parse the ``[figure]`` section keys applicable to tradeoff."""
        _check_keys(
            payload,
            ("figure", "app", "emts", "records", "duration_s", "runs",
             "tolerance_db"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "app" in payload:
            kwargs["app"] = str(payload["app"])
        if "emts" in payload:
            kwargs["emts"] = _str_tuple(payload["emts"], f"{where}.emts")
        if "records" in payload:
            kwargs["records"] = _str_tuple(payload["records"], f"{where}.records")
        if "duration_s" in payload:
            kwargs["duration_s"] = _float(
                payload["duration_s"], f"{where}.duration_s"
            )
        if "runs" in payload:
            kwargs["runs"] = _int(payload["runs"], f"{where}.runs")
        if "tolerance_db" in payload:
            kwargs["tolerance_db"] = _float(
                payload["tolerance_db"], f"{where}.tolerance_db"
            )
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[figure]`` section, fully resolved."""
        return {
            "figure": self.KIND,
            "app": self.app,
            "emts": list(self.emts),
            "records": list(self.records),
            "duration_s": self.duration_s,
            "runs": self.runs,
            "tolerance_db": self.tolerance_db,
        }


#: Any figure parameter block.
FigureParams = Union[Fig2Params, Fig4Params, EnergyParams, TradeoffParams]

#: ``figure`` name -> parameter class.
_FIGURES: dict[str, type] = {
    cls.KIND: cls
    for cls in (Fig2Params, Fig4Params, EnergyParams, TradeoffParams)
}


def _figure_from_payload(payload: Mapping[str, Any], where: str) -> FigureParams:
    if "figure" not in payload:
        raise _fail(
            where,
            f"a figure experiment needs a 'figure' key; "
            f"available: {sorted(_FIGURES)}",
        )
    figure = str(payload["figure"])
    if figure not in _FIGURES:
        raise _fail(
            where,
            f"unknown figure {figure!r}; available: {sorted(_FIGURES)}",
        )
    return _FIGURES[figure].from_payload(payload, where)


@dataclass(frozen=True)
class SweepParams:
    """A ``repro sweep``-style design-space-exploration campaign.

    Attributes:
        apps / emts / voltages: the exploration grid; ``emts`` must
            include the ``"none"`` baseline the savings are measured
            against.
        records / duration_s / runs: the Monte-Carlo corpus and depth.
        tolerance_db: quality tolerance for operating-point extraction.
    """

    KIND: ClassVar[str] = "sweep"

    apps: tuple[str, ...] = ("dwt",)
    emts: tuple[str, ...] = _DEFAULT_EMTS
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID
    records: tuple[str, ...] = _DEFAULT_RECORDS
    duration_s: float = _DEFAULT_DURATION_S
    runs: int = 6
    tolerance_db: float = 5.0

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], where: str) -> "SweepParams":
        """Parse the ``[sweep]`` section."""
        _check_keys(
            payload,
            ("apps", "emts", "voltages", "records", "duration_s", "runs",
             "tolerance_db"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "apps" in payload:
            kwargs["apps"] = _str_tuple(payload["apps"], f"{where}.apps")
        if "emts" in payload:
            kwargs["emts"] = _str_tuple(payload["emts"], f"{where}.emts")
        if "voltages" in payload:
            kwargs["voltages"] = _float_tuple(
                payload["voltages"], f"{where}.voltages"
            )
        if "records" in payload:
            kwargs["records"] = _str_tuple(payload["records"], f"{where}.records")
        if "duration_s" in payload:
            kwargs["duration_s"] = _float(
                payload["duration_s"], f"{where}.duration_s"
            )
        if "runs" in payload:
            kwargs["runs"] = _int(payload["runs"], f"{where}.runs")
        if "tolerance_db" in payload:
            kwargs["tolerance_db"] = _float(
                payload["tolerance_db"], f"{where}.tolerance_db"
            )
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[sweep]`` section, fully resolved."""
        return {
            "apps": list(self.apps),
            "emts": list(self.emts),
            "voltages": list(self.voltages),
            "records": list(self.records),
            "duration_s": self.duration_s,
            "runs": self.runs,
            "tolerance_db": self.tolerance_db,
        }


@dataclass(frozen=True)
class MissionParams:
    """A ``repro mission``-style closed-loop policy comparison.

    Attributes:
        scenario: scenario registry name
            (see :mod:`repro.runtime.scenarios`).
        policies: policy tokens (``"hysteresis"``,
            ``"static:secded@0.65"``, ``"static-ladder"`` for one static
            policy per lattice rung) or ``{"name", "params"}`` mappings.
        duration_scale: scale on segment durations and battery capacity.
        window_s: optional processing-window override.
        probe_runs / probe_duration_s: calibration fidelity knobs.
    """

    KIND: ClassVar[str] = "mission"

    scenario: str = "active_day"
    policies: tuple = ("static-ladder", "quality", "soc", "hysteresis")
    duration_scale: float = 1.0
    window_s: float | None = None
    probe_runs: int = 3
    probe_duration_s: float = 4.0

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], where: str
    ) -> "MissionParams":
        """Parse the ``[mission]`` section."""
        _check_keys(
            payload,
            ("scenario", "policies", "duration_scale", "window_s",
             "probe_runs", "probe_duration_s"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "scenario" in payload:
            kwargs["scenario"] = str(payload["scenario"])
        if "policies" in payload:
            kwargs["policies"] = _policies(
                payload["policies"], f"{where}.policies"
            )
        if "duration_scale" in payload:
            kwargs["duration_scale"] = _float(
                payload["duration_scale"], f"{where}.duration_scale"
            )
        if "window_s" in payload:
            kwargs["window_s"] = _float(payload["window_s"], f"{where}.window_s")
        if "probe_runs" in payload:
            kwargs["probe_runs"] = _int(
                payload["probe_runs"], f"{where}.probe_runs"
            )
        if "probe_duration_s" in payload:
            kwargs["probe_duration_s"] = _float(
                payload["probe_duration_s"], f"{where}.probe_duration_s"
            )
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[mission]`` section, fully resolved."""
        payload: dict[str, Any] = {
            "scenario": self.scenario,
            "policies": [
                p if isinstance(p, str) else dict(p) for p in self.policies
            ],
            "duration_scale": self.duration_scale,
            "probe_runs": self.probe_runs,
            "probe_duration_s": self.probe_duration_s,
        }
        if self.window_s is not None:
            payload["window_s"] = self.window_s
        return payload


@dataclass(frozen=True)
class CohortParams:
    """A ``repro cohort``-style population fleet simulation.

    Attributes:
        size: number of synthetic patients.
        policies: policy tokens or mappings (see :class:`MissionParams`).
        scenarios: mission-template mix (``"name:weight,..."`` or pairs).
        pathology: optional catalog-record mix override.
        environment / shielding: optional noise-gain / BER-stress mixes.
        battery_cv / battery_clip: optional battery-lot spread overrides.
        duration_scale: scale on every patient mission.
        probe_runs / probe_duration_s: calibration fidelity knobs.
        allow_failed_patients: degrade gracefully when a patient's
            mission raises — population statistics cover the survivors
            and the failures are reported (the historical ``repro
            cohort`` behaviour, and the default).  When false, any
            failed patient fails the whole fleet point (and the
            campaign retries it on the next run).
    """

    KIND: ClassVar[str] = "cohort"

    size: int = 200
    policies: tuple = ("static", "soc", "hysteresis")
    scenarios: tuple = (("active_day", 0.7), ("overnight", 0.3))
    pathology: tuple | None = None
    environment: tuple | None = None
    shielding: tuple | None = None
    battery_cv: float | None = None
    battery_clip: tuple[float, float] | None = None
    duration_scale: float = 1.0
    probe_runs: int = 3
    probe_duration_s: float = 4.0
    allow_failed_patients: bool = True

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], where: str) -> "CohortParams":
        """Parse the ``[cohort]`` section."""
        _check_keys(
            payload,
            ("size", "policies", "scenarios", "pathology", "environment",
             "shielding", "battery_cv", "battery_clip", "duration_scale",
             "probe_runs", "probe_duration_s", "allow_failed_patients"),
            where,
        )
        kwargs: dict[str, Any] = {}
        if "size" in payload:
            kwargs["size"] = _int(payload["size"], f"{where}.size")
        if "policies" in payload:
            kwargs["policies"] = _policies(
                payload["policies"], f"{where}.policies"
            )
        if "scenarios" in payload:
            kwargs["scenarios"] = _mix(
                payload["scenarios"], f"{where}.scenarios"
            )
        if payload.get("pathology") is not None:
            kwargs["pathology"] = _mix(
                payload["pathology"], f"{where}.pathology"
            )
        if payload.get("environment") is not None:
            kwargs["environment"] = _mix(
                payload["environment"], f"{where}.environment", float
            )
        if payload.get("shielding") is not None:
            kwargs["shielding"] = _mix(
                payload["shielding"], f"{where}.shielding", float
            )
        if payload.get("battery_cv") is not None:
            kwargs["battery_cv"] = _float(
                payload["battery_cv"], f"{where}.battery_cv"
            )
        if payload.get("battery_clip") is not None:
            clip = _float_tuple(payload["battery_clip"], f"{where}.battery_clip")
            if len(clip) != 2:
                raise _fail(
                    f"{where}.battery_clip", f"expected [low, high], got {clip}"
                )
            kwargs["battery_clip"] = clip
        if "duration_scale" in payload:
            kwargs["duration_scale"] = _float(
                payload["duration_scale"], f"{where}.duration_scale"
            )
        if "probe_runs" in payload:
            kwargs["probe_runs"] = _int(
                payload["probe_runs"], f"{where}.probe_runs"
            )
        if "probe_duration_s" in payload:
            kwargs["probe_duration_s"] = _float(
                payload["probe_duration_s"], f"{where}.probe_duration_s"
            )
        if "allow_failed_patients" in payload:
            value = payload["allow_failed_patients"]
            if not isinstance(value, bool):
                raise _fail(
                    f"{where}.allow_failed_patients",
                    f"expected a boolean, got {value!r}",
                )
            kwargs["allow_failed_patients"] = value
        return cls(**kwargs)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe ``[cohort]`` section, fully resolved."""
        payload: dict[str, Any] = {
            "size": self.size,
            "policies": [
                p if isinstance(p, str) else dict(p) for p in self.policies
            ],
            "scenarios": _mix_payload(self.scenarios),
            "duration_scale": self.duration_scale,
            "probe_runs": self.probe_runs,
            "probe_duration_s": self.probe_duration_s,
            "allow_failed_patients": self.allow_failed_patients,
        }
        if self.pathology is not None:
            payload["pathology"] = _mix_payload(self.pathology)
        if self.environment is not None:
            payload["environment"] = _mix_payload(self.environment)
        if self.shielding is not None:
            payload["shielding"] = _mix_payload(self.shielding)
        if self.battery_cv is not None:
            payload["battery_cv"] = self.battery_cv
        if self.battery_clip is not None:
            payload["battery_clip"] = list(self.battery_clip)
        return payload


#: ``kind`` -> section parser.
_KIND_PARSERS = {
    "figure": _figure_from_payload,
    "sweep": SweepParams.from_payload,
    "mission": MissionParams.from_payload,
    "cohort": CohortParams.from_payload,
}

#: The workload kinds an experiment can describe.
EXPERIMENT_KINDS = tuple(_KIND_PARSERS)

_TOP_LEVEL_KEYS = (
    "version", "kind", "name", "seed", "workers", "backend", "store",
    *EXPERIMENT_KINDS,
)


# --------------------------------------------------------------------------
# The experiment envelope
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """One declarative, runnable exploration.

    Attributes:
        name: experiment identity — labels reports and, for kinds that
            persist results, names the result store(s).
        kind: one of :data:`EXPERIMENT_KINDS`.
        params: the kind-specific parameter block.
        seed: optional master Monte-Carlo seed (each kind's historical
            default applies when ``None``).
        workers: optional default worker count for the execution backend.
        backend: optional execution-backend name
            (see :mod:`repro.api.session`).
        store: optional result-store basename; ``None`` keeps figure,
            mission and cohort runs ephemeral (sweeps always persist,
            defaulting to the experiment name).
        version: schema version (always :data:`SCHEMA_VERSION`).
    """

    name: str
    kind: str
    params: Any
    seed: int | None = None
    workers: int | None = None
    backend: str | None = None
    store: str | None = None
    version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.version != SCHEMA_VERSION:
            raise ExperimentSpecError(
                f"unsupported experiment schema version {self.version!r}; "
                f"this build supports version {SCHEMA_VERSION}"
            )
        if not self.name or "/" in str(self.name):
            raise ExperimentSpecError(
                f"experiment name must be a non-empty path-safe string, "
                f"got {self.name!r}"
            )
        if self.kind not in _KIND_PARSERS:
            raise ExperimentSpecError(
                f"unknown experiment kind {self.kind!r}; "
                f"available: {sorted(_KIND_PARSERS)}"
            )
        expected = {
            "figure": (Fig2Params, Fig4Params, EnergyParams, TradeoffParams),
            "sweep": (SweepParams,),
            "mission": (MissionParams,),
            "cohort": (CohortParams,),
        }[self.kind]
        if not isinstance(self.params, expected):
            raise ExperimentSpecError(
                f"experiment kind {self.kind!r} needs params of type "
                f"{'/'.join(c.__name__ for c in expected)}, "
                f"got {type(self.params).__name__}"
            )
        if self.store is not None and (
            not self.store or "/" in str(self.store)
        ):
            raise ExperimentSpecError(
                f"store name must be a non-empty path-safe string, "
                f"got {self.store!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ExperimentSpecError(
                f"workers must be >= 1, got {self.workers}"
            )

    def to_payload(self) -> dict[str, Any]:
        """The JSON-safe file form, with every default materialised.

        Optional fields that are unset are omitted (TOML has no null),
        so ``from_payload(to_payload(e)) == e`` and the canonical JSON
        of the payload is the experiment's stable identity.
        """
        payload: dict[str, Any] = {
            "version": self.version,
            "kind": self.kind,
            "name": self.name,
        }
        for key in ("seed", "workers", "backend", "store"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        payload[self.kind] = self.params.to_payload()
        return payload

    def canonical_json(self) -> str:
        """Canonical JSON of :meth:`to_payload` — the identity text."""
        return serde.canonical_json(self.to_payload())

    def content_hash(self) -> str:
        """SHA-256 of the canonical form; stable across file formats."""
        return serde.content_hash(self.to_payload())

    def with_seed(self, seed: int | None) -> "Experiment":
        """A copy with the master seed replaced (``None`` keeps it)."""
        if seed is None:
            return self
        return replace(self, seed=seed)


def experiment_from_payload(payload: Mapping[str, Any]) -> Experiment:
    """Build an :class:`Experiment` from a parsed TOML/JSON payload.

    Validation is strict and fails with located errors: a missing or
    unsupported ``version``, an unknown ``kind``, unknown keys at the
    top level or inside the kind section, and malformed values are all
    rejected before anything is planned.
    """
    if not isinstance(payload, Mapping):
        raise ExperimentSpecError(
            f"an experiment payload must be a mapping, "
            f"got {type(payload).__name__}"
        )
    payload = serde.canonicalise(payload)
    if "version" not in payload:
        raise ExperimentSpecError(
            f"experiment payload must declare 'version = {SCHEMA_VERSION}'"
        )
    version = payload["version"]
    if version != SCHEMA_VERSION:
        raise ExperimentSpecError(
            f"unsupported experiment schema version {version!r}; "
            f"this build supports version {SCHEMA_VERSION}"
        )
    if "kind" not in payload:
        raise ExperimentSpecError(
            f"experiment payload must declare a 'kind' "
            f"(one of {sorted(_KIND_PARSERS)})"
        )
    kind = str(payload["kind"])
    if kind not in _KIND_PARSERS:
        raise ExperimentSpecError(
            f"unknown experiment kind {kind!r}; "
            f"available: {sorted(_KIND_PARSERS)}"
        )
    allowed = ("version", "kind", "name", "seed", "workers", "backend",
               "store", kind)
    _check_keys(payload, allowed, "experiment")
    if "name" not in payload:
        raise ExperimentSpecError("experiment payload must declare a 'name'")
    section = payload.get(kind)
    if not isinstance(section, Mapping):
        raise ExperimentSpecError(
            f"experiment payload needs a [{kind}] section (a mapping), "
            f"got {type(section).__name__}"
        )
    params = _KIND_PARSERS[kind](section, kind)
    kwargs: dict[str, Any] = {}
    if payload.get("seed") is not None:
        kwargs["seed"] = _int(payload["seed"], "experiment.seed")
    if payload.get("workers") is not None:
        kwargs["workers"] = _int(payload["workers"], "experiment.workers")
    if payload.get("backend") is not None:
        kwargs["backend"] = str(payload["backend"])
    if payload.get("store") is not None:
        kwargs["store"] = str(payload["store"])
    return Experiment(
        name=str(payload["name"]), kind=kind, params=params, **kwargs
    )


def load_experiment(path: Path | str) -> Experiment:
    """Load an experiment from a ``.toml`` or ``.json`` file."""
    payload = serde.load_payload(path)
    try:
        return experiment_from_payload(payload)
    except ExperimentSpecError as exc:
        raise ExperimentSpecError(f"{path}: {exc}") from exc


def dump_experiment(experiment: Experiment, path: Path | str) -> None:
    """Write an experiment to a ``.toml`` or ``.json`` file.

    The dump is the fully-resolved payload (defaults materialised), so
    reloading it reproduces the experiment bit for bit — including its
    :meth:`Experiment.content_hash`.
    """
    serde.dump_payload(experiment.to_payload(), path)
