"""Beat-morphology presets and rhythm models for the synthetic corpus.

The MIT-BIH Arrhythmia database mixes normal sinus rhythm with ectopic and
conduction-abnormal beats.  This module provides the corresponding
morphology presets and a rhythm engine that interleaves them, so the
synthetic records exercise the same signal diversity the paper averages
over (Section III: "Different ECG signals with different pathologies are
used to produce each averaged point").

Morphology values are textbook lead-II shapes; what matters for the
reproduction is the *diversity* of QRS widths, amplitudes, and baselines,
not clinical exactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SignalError
from .synthesis import NORMAL_MORPHOLOGY, BeatMorphology, WaveParams

__all__ = [
    "PVC_MORPHOLOGY",
    "APC_MORPHOLOGY",
    "LBBB_MORPHOLOGY",
    "RBBB_MORPHOLOGY",
    "PACED_MORPHOLOGY",
    "MORPHOLOGY_BY_LABEL",
    "RhythmSpec",
    "generate_rhythm",
]


#: Premature ventricular contraction: wide, high-amplitude QRS, no P wave,
#: discordant T wave.
PVC_MORPHOLOGY = BeatMorphology(
    label="V",
    waves={
        "Q": WaveParams(amplitude_mv=-0.20, width_s=0.030, offset_s=-0.08),
        "R": WaveParams(amplitude_mv=1.60, width_s=0.038, offset_s=0.0),
        "S": WaveParams(amplitude_mv=-0.80, width_s=0.045, offset_s=0.09),
        "T": WaveParams(amplitude_mv=-0.45, width_s=0.070, offset_s=0.32),
    },
)

#: Atrial premature contraction: early beat, abnormal (biphasic-ish) P.
APC_MORPHOLOGY = BeatMorphology(
    label="A",
    waves={
        "P": WaveParams(amplitude_mv=0.08, width_s=0.035, offset_s=-0.14),
        "Q": WaveParams(amplitude_mv=-0.10, width_s=0.010, offset_s=-0.035),
        "R": WaveParams(amplitude_mv=1.05, width_s=0.012, offset_s=0.0),
        "S": WaveParams(amplitude_mv=-0.22, width_s=0.012, offset_s=0.035),
        "T": WaveParams(amplitude_mv=0.25, width_s=0.055, offset_s=0.28),
    },
)

#: Left bundle-branch block: broad notched QRS, discordant T.
LBBB_MORPHOLOGY = BeatMorphology(
    label="L",
    waves={
        "P": WaveParams(amplitude_mv=0.12, width_s=0.025, offset_s=-0.20),
        "R": WaveParams(amplitude_mv=0.90, width_s=0.030, offset_s=-0.01),
        "S": WaveParams(amplitude_mv=0.55, width_s=0.035, offset_s=0.05),
        "T": WaveParams(amplitude_mv=-0.35, width_s=0.065, offset_s=0.33),
    },
)

#: Right bundle-branch block: rSR' pattern approximated by twin R lobes.
RBBB_MORPHOLOGY = BeatMorphology(
    label="R",
    waves={
        "P": WaveParams(amplitude_mv=0.13, width_s=0.025, offset_s=-0.19),
        "Q": WaveParams(amplitude_mv=-0.15, width_s=0.012, offset_s=-0.045),
        "R": WaveParams(amplitude_mv=0.85, width_s=0.014, offset_s=0.0),
        "S": WaveParams(amplitude_mv=0.60, width_s=0.020, offset_s=0.05),
        "T": WaveParams(amplitude_mv=0.20, width_s=0.060, offset_s=0.31),
    },
)

#: Ventricular paced beat: pacing spike followed by a wide QRS.
PACED_MORPHOLOGY = BeatMorphology(
    label="/",
    waves={
        "Q": WaveParams(amplitude_mv=0.70, width_s=0.004, offset_s=-0.06),
        "R": WaveParams(amplitude_mv=1.30, width_s=0.040, offset_s=0.0),
        "S": WaveParams(amplitude_mv=-0.60, width_s=0.050, offset_s=0.10),
        "T": WaveParams(amplitude_mv=-0.40, width_s=0.070, offset_s=0.34),
    },
)

#: Registry keyed by MIT-BIH annotation symbol.
MORPHOLOGY_BY_LABEL: dict[str, BeatMorphology] = {
    "N": NORMAL_MORPHOLOGY,
    "V": PVC_MORPHOLOGY,
    "A": APC_MORPHOLOGY,
    "L": LBBB_MORPHOLOGY,
    "R": RBBB_MORPHOLOGY,
    "/": PACED_MORPHOLOGY,
}


@dataclass(frozen=True)
class RhythmSpec:
    """A statistical description of a record's rhythm.

    Attributes:
        base_label: morphology used for non-ectopic beats.
        ectopy: mapping from beat label to its per-beat probability;
            probabilities must sum to less than 1, the remainder being the
            base label.
        mean_hr_bpm: mean heart rate.
        std_hr_bpm: heart-rate variability.
        prematurity: fraction by which an ectopic beat shortens the
            preceding RR interval (0 = on time, 0.3 = 30 % early), with a
            compensatory pause after.
        amplitude_gain: global gain applied to every beat (electrode
            placement differences between records).
    """

    base_label: str = "N"
    ectopy: dict[str, float] = field(default_factory=dict)
    mean_hr_bpm: float = 72.0
    std_hr_bpm: float = 2.5
    prematurity: float = 0.25
    amplitude_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.base_label not in MORPHOLOGY_BY_LABEL:
            raise SignalError(f"unknown base beat label {self.base_label!r}")
        total = 0.0
        for label, prob in self.ectopy.items():
            if label not in MORPHOLOGY_BY_LABEL:
                raise SignalError(f"unknown ectopic beat label {label!r}")
            if not 0.0 <= prob <= 1.0:
                raise SignalError(f"probability for {label!r} out of [0,1]")
            total += prob
        if total >= 1.0:
            raise SignalError(f"ectopy probabilities sum to {total} >= 1")


def generate_rhythm(
    spec: RhythmSpec,
    n_beats: int,
    rng: np.random.Generator,
) -> tuple[list[BeatMorphology], np.ndarray]:
    """Draw a beat-label sequence and matching RR adjustments.

    Returns:
        ``(morphologies, rr_scale)`` where ``rr_scale[i]`` multiplies the
        i-th RR interval from the tachogram (premature beats arrive early,
        followed by a compensatory pause).
    """
    if n_beats <= 0:
        raise SignalError(f"n_beats must be positive, got {n_beats}")
    labels = list(spec.ectopy.keys())
    probs = np.array([spec.ectopy[k] for k in labels], dtype=np.float64)
    base_prob = 1.0 - float(probs.sum())
    all_labels = labels + [spec.base_label]
    all_probs = np.append(probs, base_prob)

    drawn = rng.choice(len(all_labels), size=n_beats, p=all_probs)
    morphologies: list[BeatMorphology] = []
    rr_scale = np.ones(n_beats, dtype=np.float64)
    for i, idx in enumerate(drawn):
        label = all_labels[idx]
        morph = MORPHOLOGY_BY_LABEL[label]
        if spec.amplitude_gain != 1.0:
            morph = morph.scaled(spec.amplitude_gain)
        morphologies.append(morph)
        is_ectopic = label != spec.base_label
        if is_ectopic and i > 0:
            rr_scale[i - 1] *= 1.0 - spec.prematurity
            if i < n_beats - 1:
                rr_scale[i] *= 1.0 + spec.prematurity
    return morphologies, rr_scale
