"""Micro-benchmarks: EMT codec throughput (design decision D1).

The quality experiments push millions of words through the EMT codecs;
these benches measure the vectorised paths' throughput and document the
gap to the bit-serial reference implementations the tests validate them
against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emt import DreamEMT, NoProtection, ParityEMT, SecDedEMT

N_WORDS = 65_536


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(42)
    return rng.integers(0, 1 << 16, size=N_WORDS, dtype=np.int64)


@pytest.mark.parametrize(
    "emt_cls", [NoProtection, ParityEMT, DreamEMT, SecDedEMT],
    ids=lambda c: c.name,
)
def test_encode_throughput(benchmark, emt_cls, payload):
    emt = emt_cls()
    benchmark(emt.encode, payload)


@pytest.mark.parametrize(
    "emt_cls", [NoProtection, ParityEMT, DreamEMT, SecDedEMT],
    ids=lambda c: c.name,
)
def test_decode_throughput(benchmark, emt_cls, payload):
    emt = emt_cls()
    stored, side = emt.encode(payload)
    corrupted = stored ^ 0x10  # one mid-word fault everywhere
    benchmark(emt.decode, corrupted, side)


@pytest.mark.parametrize("emt_cls", [DreamEMT, SecDedEMT], ids=lambda c: c.name)
def test_bit_serial_reference_encode(benchmark, emt_cls, payload):
    """D1 baseline: the scalar hardware-transcription path (1k words)."""
    emt = emt_cls()
    words = [int(w) for w in payload[:1024]]

    def encode_all():
        return [emt.encode_word(w) for w in words]

    benchmark(encode_all)


def test_fault_injection_throughput(benchmark, payload):
    """Corrupting a full 32 kB memory image is two bitwise ops."""
    from repro.mem import sample_fault_map

    fm = sample_fault_map(N_WORDS, 16, 1e-3, np.random.default_rng(1))
    benchmark(fm.apply, payload)


def test_fabric_roundtrip_throughput(benchmark, payload):
    """A full store+load round trip through the DREAM-protected fabric."""
    from repro.mem import MemoryFabric, MemoryGeometry, sample_fault_map

    geometry = MemoryGeometry(n_words=N_WORDS, word_bits=16, n_banks=16)
    fm = sample_fault_map(N_WORDS, 16, 1e-3, np.random.default_rng(2))
    fabric = MemoryFabric(DreamEMT(), fault_map=fm, geometry=geometry)
    values = payload - 32768  # signed

    benchmark(fabric.roundtrip, "bench", values)
