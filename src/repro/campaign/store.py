"""On-disk campaign result store (JSON lines, append-only).

One store file per campaign, ``<root>/<campaign>.jsonl``, with one JSON
object per line::

    {"hash": "...", "kind": "montecarlo", "params": {...},
     "status": "ok", "result": {...}, "elapsed_s": 0.41}

The append-only discipline makes writes crash-safe (a torn final line is
skipped on load) and keeps concurrent readers simple.  Records are keyed
by the point's content hash (:meth:`CampaignPoint.content_hash`);
re-appending a hash supersedes the earlier record, so a store never needs
compaction to stay correct.  Only ``status == "ok"`` records count as
completed — failed points are retried on the next run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..errors import CampaignError

__all__ = ["ResultStore", "default_store_root"]

#: Valid terminal states of a stored point.
_STATUSES = ("ok", "failed")


def default_store_root() -> Path:
    """Directory campaign stores live in.

    ``REPRO_CAMPAIGN_DIR`` overrides the default
    ``benchmarks/results/campaigns`` (relative to the working directory),
    mirroring the benchmark harness's results layout.  ``~`` in the
    override expands to the user's home directory.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_DIR")
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "campaigns"


class ResultStore:
    """Append-only JSONL store of one campaign's point results."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    @classmethod
    def for_campaign(
        cls, name: str, root: Path | str | None = None
    ) -> "ResultStore":
        """The store for campaign ``name`` under ``root`` (or the default)."""
        root = Path(root) if root is not None else default_store_root()
        return cls(root / f"{name}.jsonl")

    def load(self) -> dict[str, dict]:
        """Read all records, keyed by point hash (later lines win).

        Malformed lines (e.g. a torn tail from an interrupted run) are
        skipped silently; an absent file is an empty store.
        """
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "hash" in record:
                    records[record["hash"]] = record
        return records

    def completed_hashes(self) -> set[str]:
        """Hashes of points with a successful stored result."""
        return {
            h for h, rec in self.load().items() if rec.get("status") == "ok"
        }

    def append(self, record: dict) -> None:
        """Persist one point record (creates the store on first write)."""
        status = record.get("status")
        if status not in _STATUSES:
            raise CampaignError(
                f"record status must be one of {_STATUSES}, got {status!r}"
            )
        if "hash" not in record:
            raise CampaignError("record must carry the point hash")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self.load())
