"""Bit-significance analysis — the paper's Fig 2 in miniature.

Injects a stuck-at fault at each bit position of all data buffers and
measures the output SNR of two contrasting applications, showing the two
findings that motivate DREAM (Section III):

1. errors on MSB positions degrade the output far more than LSB errors;
2. matrix filtering is far more fragile than sample-wise pipelines,
   because each output element depends on a full row and column.

Run:  python examples/significance_analysis.py
"""

from __future__ import annotations

from repro.exp.common import ExperimentConfig
from repro.exp.fig2 import run_fig2
from repro.exp.report import format_fig2


def main() -> None:
    config = ExperimentConfig(records=("100", "106"), duration_s=8.0)
    result = run_fig2(app_names=("dwt", "matrix_filter"), config=config)
    print(format_fig2(result))

    print("\nReading the table:")
    for app in ("dwt", "matrix_filter"):
        series = result.series(app, 1)
        print(
            f"  {app:14s} LSB (bit 0) error: {series[0]:6.1f} dB"
            f"   MSB (bit 15) error: {series[15]:6.1f} dB"
        )
    print("\nLSB faults are tolerable; MSB faults are catastrophic —")
    print("so DREAM spends its 5 extra bits/word guarding the MSB run.")


if __name__ == "__main__":
    main()
