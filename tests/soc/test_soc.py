"""Tests for the VirtualSOC-lite platform substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import DwtApp
from repro.emt import NoProtection
from repro.errors import ConfigurationError, SimulationError
from repro.mem import MemoryFabric, MemoryGeometry
from repro.soc import (
    CoreTask,
    Crossbar,
    MemoryAccess,
    SimulationReport,
    SoCConfig,
    SoCSimulator,
    tasks_from_fabric,
)

SMALL = MemoryGeometry(n_words=256, word_bits=16, n_banks=4)


class TestConfig:
    def test_paper_platform_defaults(self):
        config = SoCConfig()
        assert config.clock_hz == 200e6  # "clock frequency of 200 MHz"
        assert config.geometry.n_banks == 16
        assert config.cycle_time_s == pytest.approx(5e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoCConfig(n_cores=0)
        with pytest.raises(ConfigurationError):
            SoCConfig(n_cores=17)  # "up to 16 ARM V6 cores"
        with pytest.raises(ConfigurationError):
            SoCConfig(clock_hz=0)
        with pytest.raises(ConfigurationError):
            SoCConfig(cycles_per_access=0)


class TestMemoryAccess:
    def test_validation(self):
        with pytest.raises(SimulationError):
            MemoryAccess(address=-1, is_write=False)
        with pytest.raises(SimulationError):
            MemoryAccess(address=0, is_write=False, gap_cycles=-1)


class TestCrossbar:
    def test_bank_mapping_is_word_interleaved(self):
        crossbar = Crossbar(SMALL, n_cores=2)
        assert crossbar.bank_of(0) == 0
        assert crossbar.bank_of(5) == 1
        with pytest.raises(SimulationError):
            crossbar.bank_of(256)

    def test_no_conflict_distinct_banks(self):
        crossbar = Crossbar(SMALL, n_cores=2)
        granted = crossbar.arbitrate({0: 0, 1: 1})
        assert granted == {0, 1}
        assert crossbar.conflicts == 0

    def test_conflict_grants_one(self):
        crossbar = Crossbar(SMALL, n_cores=2)
        granted = crossbar.arbitrate({0: 0, 1: 4})  # both bank 0
        assert len(granted) == 1
        assert crossbar.conflicts == 1

    def test_round_robin_fairness(self):
        crossbar = Crossbar(SMALL, n_cores=2)
        winners = [
            next(iter(crossbar.arbitrate({0: 0, 1: 4}))) for _ in range(4)
        ]
        assert winners[0] != winners[1]  # alternating grants
        assert winners == [winners[0], winners[1]] * 2


class TestTasksFromFabric:
    def test_expands_events_into_word_accesses(self):
        fabric = MemoryFabric(
            NoProtection(), geometry=SMALL, record_trace=True
        )
        fabric.roundtrip("x", np.arange(16))
        config = SoCConfig(n_cores=1, geometry=SMALL)
        tasks = tasks_from_fabric(fabric, config)
        assert len(tasks) == 1
        assert tasks[0].n_accesses == 32  # 16 writes + 16 reads
        writes = [a for a in tasks[0].accesses if a.is_write]
        assert len(writes) == 16

    def test_multi_core_partitioning_covers_all_words(self):
        fabric = MemoryFabric(
            NoProtection(), geometry=SMALL, record_trace=True
        )
        fabric.roundtrip("x", np.arange(30))
        config = SoCConfig(n_cores=4, geometry=SMALL)
        tasks = tasks_from_fabric(fabric, config)
        write_addresses = sorted(
            a.address
            for t in tasks
            for a in t.accesses
            if a.is_write
        )
        assert write_addresses == list(range(30))

    def test_requires_trace(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        with pytest.raises(SimulationError):
            tasks_from_fabric(fabric, SoCConfig(geometry=SMALL))


class TestSimulator:
    def make_task(self, core_id, addresses, gap=0):
        return CoreTask(
            core_id=core_id,
            accesses=[
                MemoryAccess(address=a, is_write=False, gap_cycles=gap)
                for a in addresses
            ],
        )

    def test_single_core_cycle_count(self):
        config = SoCConfig(n_cores=1, geometry=SMALL, cycles_per_access=2,
                           compute_gap_cycles=0)
        task = self.make_task(0, range(10))
        report = SoCSimulator(config).run([task])
        assert report.n_accesses == 10
        assert report.cycles >= 20  # 10 accesses x 2 cycles
        assert report.conflicts == 0

    def test_conflict_free_parallel_speedup(self):
        config = SoCConfig(n_cores=2, geometry=SMALL, cycles_per_access=1)
        # Cores touch different banks exclusively: near-linear speedup.
        t0 = self.make_task(0, [0, 4, 8, 12] * 50)
        t1 = self.make_task(1, [1, 5, 9, 13] * 50)
        serial = SoCSimulator(
            SoCConfig(n_cores=1, geometry=SMALL, cycles_per_access=1)
        ).run([self.make_task(0, ([0, 4, 8, 12] * 50) + ([1, 5, 9, 13] * 50))])
        parallel = SoCSimulator(config).run([t0, t1])
        assert parallel.cycles < 0.7 * serial.cycles
        assert parallel.conflicts == 0

    def test_same_bank_contention_serialises(self):
        config = SoCConfig(n_cores=2, geometry=SMALL, cycles_per_access=1)
        t0 = self.make_task(0, [0] * 100)
        t1 = self.make_task(1, [4] * 100)  # also bank 0
        report = SoCSimulator(config).run([t0, t1])
        assert report.conflicts > 0
        assert sum(report.per_core_stall_cycles) > 0

    def test_bank_utilisation_sums_to_one(self):
        config = SoCConfig(n_cores=1, geometry=SMALL)
        report = SoCSimulator(config).run([self.make_task(0, range(64))])
        assert sum(report.bank_utilisation()) == pytest.approx(1.0)
        assert report.per_bank_accesses == [16, 16, 16, 16]

    def test_compute_gaps_stretch_runtime(self):
        config = SoCConfig(n_cores=1, geometry=SMALL, cycles_per_access=1)
        fast = SoCSimulator(config).run([self.make_task(0, range(50), gap=0)])
        slow = SoCSimulator(config).run([self.make_task(0, range(50), gap=5)])
        assert slow.cycles > fast.cycles + 200

    def test_too_many_tasks_rejected(self):
        config = SoCConfig(n_cores=1, geometry=SMALL)
        tasks = [self.make_task(i, [0]) for i in range(2)]
        with pytest.raises(SimulationError):
            SoCSimulator(config).run(tasks)

    def test_max_cycles_guard(self):
        config = SoCConfig(n_cores=1, geometry=SMALL)
        task = self.make_task(0, range(100))
        with pytest.raises(SimulationError):
            SoCSimulator(config).run([task], max_cycles=10)

    def test_duration_matches_cycles(self):
        config = SoCConfig(n_cores=1, geometry=SMALL)
        report = SoCSimulator(config).run([self.make_task(0, range(10))])
        assert report.duration_s == pytest.approx(
            report.cycles * config.cycle_time_s
        )

    def test_empty_task_list(self):
        report = SoCSimulator(SoCConfig(geometry=SMALL)).run([])
        assert report.n_accesses == 0

    def test_end_to_end_with_dwt_app(self, short_samples):
        """Replay a real application's trace on the platform."""
        fabric = MemoryFabric(NoProtection(), record_trace=True)
        DwtApp().run(short_samples, fabric)
        config = SoCConfig(n_cores=4)
        tasks = tasks_from_fabric(fabric, config)
        report = SoCSimulator(config).run(tasks)
        assert report.n_accesses == fabric.stats.data_reads + fabric.stats.data_writes
        assert report.cycles > 0
        assert report.accesses_per_cycle <= len(tasks)
