"""Shared machinery of the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation and
deposits its rows/series in the session :class:`ReportSink`; when the
session ends the sink writes ``results/<experiment>.txt`` files and
prints every report, so ``pytest benchmarks/ --benchmark-only`` leaves
both timing data and the paper-comparable tables behind.

Scale knobs (environment):

* ``REPRO_RUNS`` — Monte-Carlo runs per Fig 4 grid point (default 12
  here; the paper uses 200 — set ``REPRO_RUNS=200`` for full fidelity).
* ``REPRO_BENCH_DURATION`` — seconds of each record to process
  (default 8).
* ``REPRO_BENCH_RECORDS`` — comma-separated record names
  (default ``100,106``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.exp.common import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_runs(default: int = 12) -> int:
    """Monte-Carlo run count for the quality benches."""
    return int(os.environ.get("REPRO_RUNS", default))


def bench_records() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_RECORDS", "100,106")
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def bench_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", "8.0"))


class ReportSink:
    """Collects experiment reports; flushed at session end."""

    def __init__(self) -> None:
        self.reports: dict[str, str] = {}
        self.shared: dict[str, object] = {}

    def add(self, name: str, text: str) -> None:
        self.reports[name] = text

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        for name, text in sorted(self.reports.items()):
            (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


_ACTIVE_SINK = ReportSink()


@pytest.fixture(scope="session")
def report_sink(request):
    request.addfinalizer(_ACTIVE_SINK.flush)
    return _ACTIVE_SINK


def pytest_terminal_summary(terminalreporter):
    """Print every regenerated table after pytest's capture ends."""
    if not _ACTIVE_SINK.reports:
        return
    banner = "=" * 72
    for name, text in sorted(_ACTIVE_SINK.reports.items()):
        terminalreporter.write_line(banner)
        terminalreporter.write_line(f"[{name}]")
        terminalreporter.write_line(text)
    terminalreporter.write_line(banner)
    terminalreporter.write_line(f"reports written to {RESULTS_DIR}/")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The quality-experiment configuration used by the benches."""
    return ExperimentConfig(
        records=bench_records(),
        duration_s=bench_duration(),
        n_runs=bench_runs(),
    )
