"""Benchmark history: append/load round trip, drift verdicts, trend CLI.

The committed ``data/bench_history_drift.jsonl`` fixture is the
load-bearing artefact: ten points per series, one series collapsing on
the last point.  ``render_trend`` over it must reproduce the committed
expected text *bit-identically* — drift verdicts are pure arithmetic,
so any diff means the detector or its formatting changed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro import cli
from repro.obs import bench
from repro.obs.events import metric_event

DATA = Path(__file__).parent / "data"
FIXTURE = DATA / "bench_history_drift.jsonl"
EXPECTED = DATA / "bench_history_drift.expected.txt"


def _gauge(name: str, value: float, t: float = 1.0) -> dict:
    return metric_event(
        trace="bench-x", name=name, kind="gauge", value=value,
        t=t, pid=1, attrs={"cpus": 8},
    )


# -- append / load ----------------------------------------------------------


def test_append_and_load_round_trip(tmp_path):
    history = tmp_path / "hist.jsonl"
    events = [
        _gauge("cold_s", 1.5),
        _gauge("speedup", 3.0),
        # Non-gauge events are not history material.
        metric_event(
            trace="bench-x", name="ticks", kind="counter", value=9.0,
            t=1.0, pid=1,
        ),
    ]
    out = bench.append_history(events, path=history, revision="abc123")
    assert out == history
    loaded = bench.load_history(history)
    assert [event["name"] for event in loaded] == ["cold_s", "speedup"]
    # Every appended line carries the revision stamp in its attrs.
    assert {event["attrs"]["git"] for event in loaded} == {"abc123"}
    # The original host fingerprint attrs survive alongside.
    assert loaded[0]["attrs"]["cpus"] == 8
    # Appends accumulate — the history is a trajectory, not a snapshot.
    bench.append_history([_gauge("cold_s", 1.6)], path=history, revision="d")
    assert len(bench.load_history(history)) == 3


def test_append_refuses_malformed_events(tmp_path):
    history = tmp_path / "hist.jsonl"
    bad = _gauge("cold_s", 1.5)
    bad["value"] = "fast"
    with pytest.raises(ValueError, match="malformed history event"):
        bench.append_history([bad], path=history, revision="abc")
    assert not history.exists()


def test_load_skips_torn_and_alien_lines(tmp_path):
    history = tmp_path / "hist.jsonl"
    good = json.dumps(_gauge("cold_s", 1.5))
    history.write_text(
        good + "\n" + '{"event": "metric", "kind"' + "\n" + "[1, 2]\n",
        encoding="utf-8",
    )
    loaded = bench.load_history(history)
    assert [event["name"] for event in loaded] == ["cold_s"]


def test_missing_history_is_empty(tmp_path):
    assert bench.load_history(tmp_path / "nope.jsonl") == []


def test_default_history_path_env_override(monkeypatch, tmp_path):
    monkeypatch.delenv(bench.ENV_HISTORY, raising=False)
    assert bench.default_history_path() == (
        Path("benchmarks") / "results" / "bench_history.jsonl"
    )
    monkeypatch.setenv(bench.ENV_HISTORY, str(tmp_path / "h.jsonl"))
    assert bench.default_history_path() == tmp_path / "h.jsonl"


# -- drift arithmetic -------------------------------------------------------


def test_detect_drift_needs_window_plus_one_points():
    assert bench.detect_drift([1.0] * 5, window=5) is None
    verdict = bench.detect_drift([1.0] * 6, window=5)
    assert verdict == {
        "latest": 1.0, "median": 1.0, "delta": 0.0, "drift": False,
    }


def test_detect_drift_flags_both_directions():
    base = [2.0, 2.1, 1.9, 2.0, 2.0]
    slow = bench.detect_drift(base + [2.6])
    assert slow["drift"] and slow["delta"] == pytest.approx(0.3)
    # A sudden "improvement" is drift too (usually a broken benchmark).
    fast = bench.detect_drift(base + [1.4])
    assert fast["drift"] and fast["delta"] == pytest.approx(-0.3)
    steady = bench.detect_drift(base + [2.2])
    assert not steady["drift"]


def test_detect_drift_judges_latest_against_rolling_median():
    # Only the window points immediately before the latest matter; the
    # early outlier has rolled out of the window.
    values = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    verdict = bench.detect_drift(values, window=5)
    assert verdict["median"] == 1.0
    assert not verdict["drift"]


def test_detect_drift_zero_baseline():
    verdict = bench.detect_drift([0.0] * 6)
    assert verdict == {
        "latest": 0.0, "median": 0.0, "delta": 0.0, "drift": False,
    }
    jumped = bench.detect_drift([0.0] * 5 + [0.1])
    assert math.isinf(jumped["delta"]) and jumped["drift"]


def test_detect_drift_rejects_bad_window():
    with pytest.raises(ValueError, match="window"):
        bench.detect_drift([1.0], window=0)


def test_sparkline():
    assert bench.sparkline([]) == ""
    assert bench.sparkline([3.0, 3.0, 3.0]) == "▄▄▄"
    line = bench.sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(line) == 4


# -- the committed fixture pins the verdict --------------------------------


def test_trend_over_fixture_is_bit_identical():
    events = bench.load_history(FIXTURE)
    text, drifting = bench.render_trend(events)
    assert drifting == 1
    assert text + "\n" == EXPECTED.read_text(encoding="utf-8")
    # Deterministic: same points in, same text out.
    again, _ = bench.render_trend(bench.load_history(FIXTURE))
    assert again == text


def test_trend_metric_filter():
    events = bench.load_history(FIXTURE)
    text, drifting = bench.render_trend(events, metric="warm_s")
    assert drifting == 0
    assert "speedup" not in text
    assert "1 series" in text
    empty, none_drifting = bench.render_trend(events, metric="nope")
    assert none_drifting == 0
    assert empty == "No benchmark history for metric 'nope'."


def test_trend_band_override_clears_drift():
    events = bench.load_history(FIXTURE)
    _text, drifting = bench.render_trend(events, band=0.99)
    assert drifting == 0


# -- CLI --------------------------------------------------------------------


def test_cli_bench_trend_exits_nonzero_on_drift(capsys):
    code = cli.main(["bench", "trend", "--history", str(FIXTURE)])
    assert code == 1
    out = capsys.readouterr().out
    assert "DRIFT [rev000000009]" in out
    assert out.endswith("beyond the ±25% band.\n")


def test_cli_bench_trend_clean_exits_zero(capsys):
    code = cli.main(
        ["bench", "trend", "warm_s", "--history", str(FIXTURE)]
    )
    assert code == 0
    assert "DRIFT" not in capsys.readouterr().out


def test_cli_bench_trend_flags(tmp_path, capsys):
    code = cli.main(
        [
            "bench", "trend",
            "--history", str(FIXTURE),
            "--window", "3",
            "--band", "0.99",
        ]
    )
    assert code == 0
    assert "window 3 · band ±99%" in capsys.readouterr().out


def test_cli_bench_trend_missing_history(tmp_path, capsys):
    code = cli.main(
        ["bench", "trend", "--history", str(tmp_path / "none.jsonl")]
    )
    assert code == 0
    assert "No benchmark history." in capsys.readouterr().out
