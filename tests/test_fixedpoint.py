"""Unit and property tests for the Q-format arithmetic kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import (
    Q11,
    Q14,
    Q15,
    QFormat,
    rounded_shift_right,
    sat_add,
    sat_mul,
    sat_sub,
    saturate,
)

RAW16 = st.integers(min_value=-32768, max_value=32767)


class TestQFormat:
    def test_q15_bounds(self):
        assert Q15.min_int == -32768
        assert Q15.max_int == 32767
        assert Q15.scale == 32768.0

    def test_resolution(self):
        assert Q15.resolution == pytest.approx(1.0 / 32768.0)
        assert Q11.resolution == pytest.approx(1.0 / 2048.0)

    def test_invalid_formats(self):
        with pytest.raises(FixedPointError):
            QFormat(width=1, frac_bits=0)
        with pytest.raises(FixedPointError):
            QFormat(width=16, frac_bits=16)
        with pytest.raises(FixedPointError):
            QFormat(width=16, frac_bits=-1)

    def test_str(self):
        assert str(Q15) == "Q0.15"
        assert str(Q14) == "Q1.14"

    def test_from_float_saturates(self):
        raw = Q15.from_float(np.array([2.0, -2.0]))
        assert raw.tolist() == [32767, -32768]

    def test_from_float_rejects_nan(self):
        with pytest.raises(FixedPointError):
            Q15.from_float(np.array([np.nan]))

    def test_from_float_rounds_to_nearest(self):
        raw = Q15.from_float(np.array([1.4 / 32768, 1.6 / 32768]))
        assert raw.tolist() == [1, 2]

    @given(value=st.floats(min_value=-0.999, max_value=0.999))
    def test_roundtrip_error_within_half_lsb(self, value):
        raw = Q15.from_float(np.array([value]))
        back = Q15.to_float(raw)[0]
        assert abs(back - value) <= 0.5 / 32768 + 1e-12


class TestSaturate:
    def test_passthrough_in_range(self):
        arr = np.array([-32768, 0, 32767])
        assert np.array_equal(saturate(arr), arr)

    def test_clips_out_of_range(self):
        assert saturate(np.array([40000, -40000])).tolist() == [32767, -32768]


class TestSatAddSub:
    @given(a=RAW16, b=RAW16)
    def test_add_matches_clipped_integer_sum(self, a, b):
        expected = max(-32768, min(32767, a + b))
        assert int(sat_add(np.array([a]), np.array([b]))[0]) == expected

    @given(a=RAW16, b=RAW16)
    def test_sub_matches_clipped_integer_difference(self, a, b):
        expected = max(-32768, min(32767, a - b))
        assert int(sat_sub(np.array([a]), np.array([b]))[0]) == expected

    def test_add_saturates_both_directions(self):
        assert int(sat_add(np.array([32767]), np.array([1]))[0]) == 32767
        assert int(sat_add(np.array([-32768]), np.array([-1]))[0]) == -32768


class TestRoundedShift:
    def test_zero_shift_is_identity_copy(self):
        arr = np.array([5, -5])
        out = rounded_shift_right(arr, 0)
        assert np.array_equal(out, arr)
        out[0] = 99
        assert arr[0] == 5  # must be a copy

    def test_round_half_up(self):
        # 3 >> 1 with rounding: (3 + 1) >> 1 = 2.
        assert int(rounded_shift_right(np.array([3]), 1)[0]) == 2
        assert int(rounded_shift_right(np.array([1]), 1)[0]) == 1
        assert int(rounded_shift_right(np.array([-3]), 1)[0]) == -1

    def test_rejects_negative_shift(self):
        with pytest.raises(FixedPointError):
            rounded_shift_right(np.array([1]), -1)

    @given(value=st.integers(min_value=-(1 << 30), max_value=1 << 30),
           shift=st.integers(min_value=1, max_value=15))
    def test_error_within_half_step(self, value, shift):
        got = int(rounded_shift_right(np.array([value]), shift)[0])
        assert abs(got * (1 << shift) - value) <= (1 << shift) // 2


class TestSatMul:
    @given(a=RAW16, b=RAW16)
    def test_matches_float_product_within_one_lsb(self, a, b):
        got = int(sat_mul(np.array([a]), np.array([b]))[0])
        exact = (a / 32768.0) * (b / 32768.0) * 32768.0
        clipped = max(-32768.0, min(32767.0, exact))
        assert abs(got - clipped) <= 1.0

    @given(a=RAW16, b=RAW16)
    def test_commutative(self, a, b):
        ab = sat_mul(np.array([a]), np.array([b]))
        ba = sat_mul(np.array([b]), np.array([a]))
        assert int(ab[0]) == int(ba[0])

    def test_minus_one_squared_saturates(self):
        # (-1.0) * (-1.0) = +1.0 is unrepresentable in Q15: saturates.
        got = int(sat_mul(np.array([-32768]), np.array([-32768]))[0])
        assert got == 32767

    @given(a=RAW16)
    def test_multiply_by_one_half(self, a):
        half = 1 << 14
        got = int(sat_mul(np.array([a]), np.array([half]))[0])
        assert abs(got - a / 2) <= 1.0
