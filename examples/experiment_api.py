"""Walkthrough: the unified experiment API (`repro.api`).

Builds one experiment per workload kind programmatically, shows the
TOML each would ship as, runs a small sweep through the `Session`
facade, and reads the results back through the uniform `ResultHandle`
— including the lazy store view that re-analyses a finished run
without executing anything.

Run with::

    PYTHONPATH=src python examples/experiment_api.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import Session, dump_experiment, load_experiment
from repro.api.schema import (
    Experiment,
    Fig2Params,
    MissionParams,
    SweepParams,
)
from repro.api.serde import dumps_toml


def main() -> None:
    # ---------------------------------------------------------------- 1
    # An experiment is a frozen, versioned envelope around kind-specific
    # parameters.  Defaults mirror the historical CLI flags, so only
    # the interesting knobs need spelling out.
    sweep = Experiment(
        name="api-demo-sweep",
        kind="sweep",
        store="api-demo-sweep",
        params=SweepParams(
            apps=("morphology",),
            voltages=(0.55, 0.9),
            records=("100",),
            duration_s=3.0,
            runs=2,
            tolerance_db=40.0,
        ),
    )
    print("The sweep as a shippable TOML file:\n")
    print(dumps_toml(sweep.to_payload()))

    # Files round-trip bit-identically (defaults materialised), and the
    # content hash is stable across formats.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sweep.toml"
        dump_experiment(sweep, path)
        assert load_experiment(path).content_hash() == sweep.content_hash()

        # ------------------------------------------------------------ 2
        # One Session runs every kind.  Stores live under store_dir;
        # re-running resumes from them (delete tmp to start over).
        session = Session(store_dir=Path(tmp) / "stores")
        handle = session.run(sweep)
        print(f"executed {handle.n_executed} points "
              f"({handle.n_cached} cached), ok={handle.ok}")

        # The uniform handle: flat rows, Pareto frontier, rich result.
        for row in handle.pareto("energy_pj", "snr_db"):
            print(f"  frontier: {row['emt']:>7s} @ {row['voltage']:.2f} V  "
                  f"{row['snr_db']:6.1f} dB  {row['energy_pj'] / 1e3:8.1f} nJ")
        points = handle.result()["morphology"]["points"]
        print("  operating points:",
              [(p.emt_name, p.v_min_safe) for p in points])

        # ------------------------------------------------------------ 3
        # attach() is the lazy view: same handle, zero execution —
        # everything is served from the result stores.
        view = session.attach(sweep)
        assert view.n_executed == 0
        assert view.point_hashes() == handle.point_hashes()
        print(f"lazy view: {view.n_cached} stored points reloaded")

    # ---------------------------------------------------------------- 4
    # The other kinds use the same two calls — build (or load) an
    # Experiment, hand it to Session.run:
    figure = Experiment(
        name="api-demo-fig2", kind="figure",
        params=Fig2Params(apps=("morphology",), records=("100",),
                          duration_s=2.0),
    )
    mission = Experiment(
        name="api-demo-mission", kind="mission",
        params=MissionParams(scenario="overnight",
                             policies=("static:secded@0.65", "hysteresis"),
                             duration_scale=0.02, probe_runs=2,
                             probe_duration_s=2.0),
    )
    fig2 = Session().run(figure).result()
    print("fig2 MSB stuck-at-0 SNR:",
          round(fig2.series("morphology", 0)[-1], 1), "dB")
    for result in Session().run(mission).result():
        print(f"  mission: {result.policy_name:>18s} "
              f"{result.lifetime_days:5.2f} d, worst "
              f"{result.worst_snr_db:5.1f} dB")


if __name__ == "__main__":
    main()
