"""Hybrid EMT policy — Section VI-C as a deployable object.

Derives a voltage-range policy from a (small) Fig 4 sweep of the DWT
application, loads it into a :class:`repro.emt.HybridEMT`, and walks the
supply down from 0.90 V to 0.50 V showing which technique the policy
engages at each point and what it costs/saves.

Run:  python examples/hybrid_policy.py [n_runs]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps import DwtApp
from repro.emt import DreamEMT, HybridEMT, NoProtection, SecDedEMT, make_emt
from repro.energy import EnergySystemModel, TECH_32NM_LP
from repro.exp.common import ExperimentConfig
from repro.exp.energy_table import measure_workload
from repro.exp.fig4 import run_fig4
from repro.exp.tradeoff import run_tradeoff
from repro.mem import MemoryFabric, sample_fault_map
from repro.mem.layout import PAPER_GEOMETRY
from repro.signals import load_record


def main(n_runs: int = 6) -> None:
    config = ExperimentConfig(records=("100",), duration_s=8.0, n_runs=n_runs)
    print("deriving the policy from a DWT voltage sweep ...")
    fig4 = run_fig4(app_names=("dwt",), config=config)
    tradeoff = run_tradeoff(fig4, app_name="dwt", tolerance_db=5.0)

    print(f"\npolicy (DWT, -{tradeoff.tolerance_db:.0f} dB tolerance):")
    for entry in tradeoff.policy:
        print(f"  [{entry.v_min:.2f}; {entry.v_max:.2f}] V -> {entry.emt_name}"
              + (f"  (saves {entry.saving_pct:.1f}%)"
                 if entry.saving_pct is not None else ""))
    if not tradeoff.policy:
        print("  (no technique met the tolerance; relax it or add runs)")
        return

    members = {e.name: e for e in (NoProtection(), DreamEMT(), SecDedEMT())}
    hybrid = HybridEMT(members, tradeoff.policy, voltage=0.90)

    record = load_record("100", duration_s=8.0)
    app = DwtApp()
    workload = measure_workload("dwt", duration_s=8.0)
    nominal = EnergySystemModel(make_emt("none")).evaluate(0.90, workload).total_pj

    print(f"\n{'V':>5s} {'active EMT':>11s} {'SNR (dB)':>9s} {'energy':>7s}")
    for voltage in sorted(fig4.voltages, reverse=True):
        try:
            hybrid.set_voltage(voltage)
        except Exception:
            print(f"{voltage:5.2f} {'(outside policy)':>11s}")
            continue
        rng = np.random.default_rng(int(voltage * 100))
        fault_map = sample_fault_map(
            PAPER_GEOMETRY.n_words,
            hybrid.active.stored_bits,
            TECH_32NM_LP.ber(voltage),
            rng,
        )
        fabric = MemoryFabric(hybrid.active, fault_map=fault_map)
        out = app.run(record.samples, fabric)
        snr = app.output_snr(record.samples, out)
        energy = (
            EnergySystemModel(hybrid.active).evaluate(voltage, workload).total_pj
            / nominal
        )
        print(f"{voltage:5.2f} {hybrid.active.name:>11s} {snr:9.1f} "
              f"{energy:6.2f}x")

    print("\nThe runtime switches techniques as the supply scales —")
    print("the paper's 'triggering, selectively, one or the other'.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
