"""Tests for campaign analytics: Pareto frontier, pivots, trade-offs.

The Pareto and trade-off extractors are exercised on hand-built result
sets whose correct answers are known by construction, including the
paper's Section VI-C operating points (none/0.85 V, dream/0.65 V,
secded/0.55 V).
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    extract_tradeoff,
    format_pivot,
    pareto_frontier,
    pivot_table,
    quality_energy_rows,
    record_value,
)
from repro.errors import CampaignError

#: The error-free quality ceiling of the hand-built result set.
CEILING = 96.0

#: Hand-built SNR surfaces: contiguous-from-the-top safe ranges end at
#: the paper's Section VI-C floors (tolerance 1 dB): none holds to
#: 0.85 V, DREAM to 0.65 V, SEC/DED to 0.55 V.  The none surface dips at
#: 0.65 V and "recovers" at 0.60 V to check that a lucky recovery does
#: not extend the safe range.
SNR = {
    "none": {0.90: 96.0, 0.85: 95.5, 0.75: 80.0, 0.65: 40.0, 0.60: 96.0,
             0.55: 10.0, 0.50: 0.0},
    "dream": {0.90: 96.0, 0.85: 96.0, 0.75: 96.0, 0.65: 95.2, 0.60: 80.0,
              0.55: 70.0, 0.50: 40.0},
    "secded": {0.90: 96.0, 0.85: 96.0, 0.75: 96.0, 0.65: 96.0, 0.60: 95.8,
               0.55: 95.1, 0.50: 20.0},
}

#: Energy model stand-in: quadratic voltage scaling with per-EMT
#: overheads (none 1.0, DREAM 1.34, SEC/DED 1.55 — the paper's means).
OVERHEAD = {"none": 1.00, "dream": 1.34, "secded": 1.55}


def energy_pj(emt: str, voltage: float) -> float:
    return 1000.0 * OVERHEAD[emt] * (voltage / 0.90) ** 2


def build_records() -> list[dict]:
    """Montecarlo + energy records shaped like runner/store output."""
    voltages = sorted(SNR["none"])
    records = []
    for voltage in voltages:
        records.append(
            {
                "hash": f"q{voltage}",
                "kind": "montecarlo",
                "status": "ok",
                "params": {"app": "dwt", "voltage": voltage},
                "result": {
                    "snr_mean_db": {
                        emt: SNR[emt][voltage] for emt in SNR
                    },
                },
            }
        )
        for emt in SNR:
            records.append(
                {
                    "hash": f"e{emt}{voltage}",
                    "kind": "energy",
                    "status": "ok",
                    "params": {"emt": emt, "voltage": voltage},
                    "result": {"total_pj": energy_pj(emt, voltage)},
                }
            )
    return records


class TestRecordValue:
    def test_lookup_order(self):
        record = {"params": {"x": 1}, "result": {"y": 2}, "z": 3}
        assert record_value(record, "x") == 1
        assert record_value(record, "y") == 2
        assert record_value(record, "z") == 3
        with pytest.raises(CampaignError):
            record_value(record, "missing")


class TestParetoFrontier:
    def test_dominated_points_are_dropped(self):
        rows = [
            {"x": 1.0, "y": 10.0},  # frontier (cheapest)
            {"x": 2.0, "y": 5.0},   # dominated by both neighbours
            {"x": 3.0, "y": 20.0},  # frontier (best quality)
            {"x": 4.0, "y": 20.0},  # dominated: same y, higher x
        ]
        frontier = pareto_frontier(rows, "x", "y")
        assert [(r["x"], r["y"]) for r in frontier] == [(1.0, 10.0), (3.0, 20.0)]

    def test_direction_flags(self):
        rows = [{"x": 1.0, "y": 1.0}, {"x": 2.0, "y": 2.0}]
        assert len(pareto_frontier(rows, "x", "y")) == 2
        # Maximising x and y: only (2, 2) survives.
        best = pareto_frontier(rows, "x", "y", minimize_x=False)
        assert [(r["x"], r["y"]) for r in best] == [(2.0, 2.0)]
        # Minimising both: only (1, 1) survives.
        low = pareto_frontier(rows, "x", "y", maximize_y=False)
        assert [(r["x"], r["y"]) for r in low] == [(1.0, 1.0)]

    def test_records_missing_keys_are_ignored(self):
        rows = [{"x": 1.0, "y": 1.0}, {"x": 2.0}]
        assert len(pareto_frontier(rows, "x", "y")) == 1

    def test_frontier_on_joined_campaign_rows(self):
        rows = quality_energy_rows(build_records(), "dwt")
        frontier = pareto_frontier(rows, "energy_pj", "snr_db")
        # Frontier must be jointly sorted: energy ascending, SNR ascending.
        energies = [r["energy_pj"] for r in frontier]
        snrs = [r["snr_db"] for r in frontier]
        assert energies == sorted(energies)
        assert snrs == sorted(snrs)
        # The Pareto view has no contiguity rule, so none's lucky
        # recovery at 0.60 V is the cheapest ceiling-quality point —
        # exactly the distinction between a frontier and the VI-C policy.
        ceiling_points = [r for r in frontier if r["snr_db"] >= CEILING - 1.0]
        cheapest_ceiling = min(ceiling_points, key=lambda r: r["energy_pj"])
        assert (cheapest_ceiling["emt"], cheapest_ceiling["voltage"]) == (
            "none",
            0.60,
        )


class TestPivot:
    def test_mean_aggregation_and_labels(self):
        records = [
            {"a": "x", "b": 1, "v": 1.0},
            {"a": "x", "b": 1, "v": 3.0},
            {"a": "y", "b": 2, "v": 5.0},
        ]
        rows, cols, cells = pivot_table(records, "a", "b", "v")
        assert rows == ["x", "y"]
        assert cols == [1, 2]
        assert cells[("x", 1)] == pytest.approx(2.0)
        assert ("y", 1) not in cells

    def test_format_pivot_renders_missing_cells(self):
        rows, cols, cells = pivot_table(
            [{"a": "x", "b": 1, "v": 1.0}], "a", "b", "v"
        )
        text = format_pivot(rows, cols, cells, corner="a\\b")
        assert "a\\b" in text
        assert "1.0" in text


class TestExtractTradeoff:
    def test_reproduces_paper_section_vi_c_points(self):
        """The acceptance grid: none/0.85 V, dream/0.65 V, secded/0.55 V."""
        rows = quality_energy_rows(build_records(), "dwt")
        points = {
            p.emt_name: p for p in extract_tradeoff(rows, tolerance_db=1.0)
        }
        assert points["none"].v_min_safe == pytest.approx(0.85)
        assert points["dream"].v_min_safe == pytest.approx(0.65)
        assert points["secded"].v_min_safe == pytest.approx(0.55)
        # Savings vs none @ 0.9 V with the quadratic scaling + overheads:
        # 1 - overhead * (v / 0.9)^2.
        assert points["none"].saving_vs_nominal == pytest.approx(
            1 - (0.85 / 0.9) ** 2
        )
        assert points["dream"].saving_vs_nominal == pytest.approx(
            1 - 1.34 * (0.65 / 0.9) ** 2
        )
        assert points["secded"].saving_vs_nominal == pytest.approx(
            1 - 1.55 * (0.55 / 0.9) ** 2
        )
        # Deeper-scaling techniques save more, as in the paper.
        assert (
            points["none"].saving_vs_nominal
            < points["dream"].saving_vs_nominal
            < points["secded"].saving_vs_nominal
        )

    def test_safe_range_must_be_contiguous_from_the_top(self):
        """none's lucky recovery at 0.60 V must not extend its range."""
        rows = quality_energy_rows(build_records(), "dwt")
        points = {
            p.emt_name: p for p in extract_tradeoff(rows, tolerance_db=1.0)
        }
        assert points["none"].v_min_safe == pytest.approx(0.85)

    def test_planned_grid_exposes_all_emt_gaps(self):
        """One montecarlo point carries every EMT, so a failed point
        removes that voltage from *all* rows at once — only the planned
        ``voltages`` grid can expose the gap."""
        planned = sorted(SNR["none"])
        rows = [
            row
            for row in quality_energy_rows(build_records(), "dwt")
            if row["voltage"] != 0.75  # the 0.75 V point failed entirely
        ]
        # Without the planned grid the gap is invisible (union walk).
        blind = {
            p.emt_name: p for p in extract_tradeoff(rows, tolerance_db=1.0)
        }
        assert blind["secded"].v_min_safe == pytest.approx(0.55)
        # With it, every EMT's safe range stops above the unvalidated gap.
        points = {
            p.emt_name: p
            for p in extract_tradeoff(rows, tolerance_db=1.0, voltages=planned)
        }
        assert points["dream"].v_min_safe == pytest.approx(0.85)
        assert points["secded"].v_min_safe == pytest.approx(0.85)

    def test_missing_voltage_breaks_contiguity(self):
        """A failed/absent grid point is an unvalidated gap: it must not
        be skipped over when walking the safe range downward."""
        rows = [
            row
            for row in quality_energy_rows(build_records(), "dwt")
            if not (row["emt"] == "secded" and row["voltage"] == 0.75)
        ]
        points = {
            p.emt_name: p for p in extract_tradeoff(rows, tolerance_db=1.0)
        }
        # secded's quality holds to 0.55 V in the data, but 0.75 V was
        # never validated, so the safe range stops above the gap.
        assert points["secded"].v_min_safe == pytest.approx(0.85)
        # Other EMTs keep their full ranges.
        assert points["dream"].v_min_safe == pytest.approx(0.65)

    def test_emts_that_never_meet_tolerance_are_omitted(self):
        rows = [
            {"emt": "none", "voltage": 0.9, "snr_db": 96.0, "energy_pj": 10.0},
            {"emt": "weak", "voltage": 0.9, "snr_db": 10.0, "energy_pj": 10.0},
        ]
        points = extract_tradeoff(rows, tolerance_db=1.0)
        assert [p.emt_name for p in points] == ["none"]

    def test_validation(self):
        rows = quality_energy_rows(build_records(), "dwt")
        with pytest.raises(CampaignError):
            extract_tradeoff(rows, tolerance_db=-1.0)
        with pytest.raises(CampaignError):
            extract_tradeoff([], tolerance_db=1.0)
        with pytest.raises(CampaignError):
            extract_tradeoff(rows, tolerance_db=1.0, baseline_emt="bch")


class TestQualityEnergyJoin:
    def test_join_skips_unmatched_and_failed(self):
        records = build_records()
        records.append(
            {
                "hash": "qf",
                "kind": "montecarlo",
                "status": "failed",
                "params": {"app": "dwt", "voltage": 0.45},
                "error": "boom",
            }
        )
        rows = quality_energy_rows(records, "dwt")
        assert all(row["voltage"] != 0.45 for row in rows)
        assert len(rows) == 21  # 7 voltages x 3 EMTs

    def test_app_specific_energy_preferred(self):
        records = [
            {
                "kind": "montecarlo", "status": "ok",
                "params": {"app": "dwt", "voltage": 0.9},
                "result": {"snr_mean_db": {"none": 96.0}},
            },
            {
                "kind": "energy", "status": "ok",
                "params": {"emt": "none", "voltage": 0.9},
                "result": {"total_pj": 1.0},
            },
            {
                "kind": "energy", "status": "ok",
                "params": {"emt": "none", "voltage": 0.9,
                           "workload_app": "dwt"},
                "result": {"total_pj": 2.0},
            },
        ]
        rows = quality_energy_rows(records, "dwt")
        assert len(rows) == 1
        assert rows[0]["energy_pj"] == 2.0
