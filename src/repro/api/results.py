"""The uniform result surface of the experiment API.

Every :meth:`repro.api.session.Session.run` returns a
:class:`ResultHandle`, whatever the experiment's kind — replacing the
four ad-hoc return shapes the subsystems historically exposed
(``Fig2Result``/``Fig4Result`` objects, ``CampaignResult`` lists,
``MissionResult`` dataclasses, ``FleetResult`` rows).  The handle is a
thin view over the campaign records the run produced (or, via
:meth:`ResultHandle.open`-style session attachment, over records
reloaded lazily from the experiment's result stores without executing
anything):

* :meth:`ResultHandle.frame` — flat analysis rows (axis coordinates
  joined with scalar result metrics), ready for ad-hoc filtering or a
  DataFrame constructor;
* :meth:`ResultHandle.pareto` — a Pareto frontier over those rows via
  :func:`repro.campaign.analysis.pareto_frontier`;
* :meth:`ResultHandle.summary` — a JSON-safe, kind-aware summary dict;
* :meth:`ResultHandle.result` — the kind's rich result object
  (``Fig4Result``, trade-off policies, mission results, fleet
  summaries), for callers that want the historical shapes back.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..campaign.analysis import pareto_frontier
from ..campaign.runner import CampaignResult
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from .schema import Experiment

__all__ = ["CampaignRun", "ResultHandle"]


@dataclass
class CampaignRun:
    """One executed (or attached) campaign of an experiment's plan.

    Attributes:
        role: the campaign's role within the experiment (``"main"`` for
            single-campaign kinds; sweeps use ``"quality"``/``"energy"``).
        spec: the campaign spec that was run.
        result: the campaign outcome (records in grid order).
        store: the backing result store, when the campaign persisted.
    """

    role: str
    spec: CampaignSpec
    result: CampaignResult
    store: ResultStore | None = None


class ResultHandle:
    """Uniform, lazily-reducing view of one experiment's results.

    Built by the session; not normally constructed by hand.  All
    record-level accessors are cheap; :meth:`summary` and
    :meth:`result` call the kind's reducer on first use and memoize.
    """

    def __init__(
        self,
        experiment: Experiment,
        runs: list[CampaignRun],
        reducer: Callable[["ResultHandle"], Any] | None = None,
        summariser: Callable[["ResultHandle"], dict] | None = None,
        framer: Callable[["ResultHandle"], list[dict]] | None = None,
    ) -> None:
        self.experiment = experiment
        self.runs = list(runs)
        self._reducer = reducer
        self._summariser = summariser
        self._framer = framer
        self._result: Any = None
        self._reduced = False
        self._summary: dict | None = None
        self._telemetry: dict[str, Any] | None = None

    # -- record-level access ----------------------------------------------

    @property
    def records(self) -> list[dict]:
        """All point records across the experiment's campaigns."""
        return [rec for run in self.runs for rec in run.result.records]

    def ok_records(self) -> list[dict]:
        """Records of successfully evaluated points only."""
        return [rec for rec in self.records if rec.get("status") == "ok"]

    def failures(self) -> list[dict]:
        """Records of failed points (with their ``error`` text)."""
        return [rec for rec in self.records if rec.get("status") == "failed"]

    @property
    def ok(self) -> bool:
        """True when every point of every campaign succeeded."""
        return not self.failures()

    @property
    def n_executed(self) -> int:
        """Points evaluated by this run (not satisfied from a store)."""
        return sum(run.result.n_executed for run in self.runs)

    @property
    def n_cached(self) -> int:
        """Points satisfied from the experiment's result stores."""
        return sum(run.result.n_cached for run in self.runs)

    @property
    def n_failed(self) -> int:
        """Points whose evaluator raised."""
        return sum(run.result.n_failed for run in self.runs)

    def campaigns(self, role: str | None = None) -> list[CampaignRun]:
        """The experiment's campaign runs, optionally filtered by role."""
        if role is None:
            return list(self.runs)
        return [run for run in self.runs if run.role == role]

    def point_hashes(self) -> list[str]:
        """Content hashes of every record, in campaign/grid order.

        These are the result-store keys — the golden-equivalence tests
        compare them across entry paths to pin that the API redesign is
        a pure re-plumbing.
        """
        return [rec["hash"] for rec in self.records]

    # -- analysis views ----------------------------------------------------

    def frame(self) -> list[dict]:
        """Flat analysis rows: one dict per successful point.

        By default each row joins the point's identity (``campaign``,
        ``role``, ``kind``, ``hash``) with its axis coordinates and the
        scalar metrics of its result (nested result structures are
        skipped — reach them through :attr:`records`).  Kinds may
        install a richer view: sweep experiments frame the *joined*
        quality/energy rows (``app``/``emt``/``voltage``/``snr_db``/
        ``energy_pj``), the substrate their Pareto frontier is defined
        on.  The list is plain data: feed it to ``pandas.DataFrame`` or
        filter it in place.
        """
        if self._framer is not None:
            return self._framer(self)
        rows = []
        for run in self.runs:
            for rec in run.result.records:
                if rec.get("status") != "ok":
                    continue
                row: dict[str, Any] = {
                    "campaign": run.spec.name,
                    "role": run.role,
                    "kind": rec.get("kind"),
                    "hash": rec.get("hash"),
                }
                for key, value in (rec.get("coords") or {}).items():
                    row[key] = value
                for key, value in (rec.get("result") or {}).items():
                    if isinstance(value, (int, float, str, bool)):
                        row[key] = value
                rows.append(row)
        return rows

    def pareto(
        self,
        x_key: str,
        y_key: str,
        minimize_x: bool = True,
        maximize_y: bool = True,
    ) -> list[dict]:
        """Non-dominated :meth:`frame` rows under ``(x_key, y_key)``.

        Rows missing either key are ignored, so a multi-campaign
        experiment (e.g. a sweep's quality + energy grids) can be fed
        whole.  Defaults match
        :func:`repro.campaign.analysis.pareto_frontier`: minimise x,
        maximise y.
        """
        return pareto_frontier(
            self.frame(), x_key, y_key,
            minimize_x=minimize_x, maximize_y=maximize_y,
        )

    # -- kind-aware reductions --------------------------------------------

    def summary(self) -> dict[str, Any]:
        """JSON-safe, kind-aware summary of the run (memoized).

        Always carries the experiment identity and execution counts;
        kinds add their headline reductions (sweep: per-app frontiers
        and operating points; mission: per-policy metrics; cohort:
        population summaries and the tail-statistic frontier).
        """
        if self._summary is None:
            base: dict[str, Any] = {
                "experiment": self.experiment.name,
                "kind": self.experiment.kind,
                "hash": self.experiment.content_hash(),
                "n_points": len(self.records),
                "n_executed": self.n_executed,
                "n_cached": self.n_cached,
                "n_failed": self.n_failed,
            }
            if self._summariser is not None:
                base.update(self._summariser(self))
            self._summary = base
        return dict(self._summary)

    def telemetry(self) -> dict[str, Any]:
        """Run telemetry recorded by the session that produced this handle.

        Keys: ``enabled`` (was the run traced), ``run_id`` (the
        content-hash-keyed trace id), ``trace_path`` (the JSONL sink to
        feed ``repro report``, or ``None``), and ``wall_s`` (the run's
        measured wall time).  An attached (not executed) handle reports
        ``enabled: False`` with no run id.
        """
        if self._telemetry is None:
            return {
                "enabled": False,
                "run_id": None,
                "trace_path": None,
                "wall_s": None,
            }
        return dict(self._telemetry)

    def result(self) -> Any:
        """The kind's rich result object (memoized).

        * ``figure``/``fig2`` -> :class:`repro.exp.fig2.Fig2Result`
        * ``figure``/``fig4`` -> :class:`repro.exp.fig4.Fig4Result`
        * ``figure``/``energy`` -> :class:`repro.exp.energy_table.EnergyAnalysis`
        * ``figure``/``tradeoff`` -> :class:`repro.exp.tradeoff.TradeoffResult`
        * ``sweep`` -> per-app dict of frontier rows and
          :class:`repro.campaign.analysis.OperatingPoint` lists
        * ``mission`` -> list of :class:`repro.runtime.MissionResult`
        * ``cohort`` -> dict of population summaries, survival curves
          and the tail-statistic frontier
        """
        if not self._reduced:
            self._result = (
                self._reducer(self) if self._reducer is not None else None
            )
            self._reduced = True
        return self._result
