"""Experiment E1 — Fig 2: SNR vs data-bit position of injected errors.

The paper's significance characterisation (Section III): for every bit
position 0..15 of the 16-bit data words, stick that bit of *all* data
buffers successively at '1' and at '0', run each application, and record
the output SNR (Formula 1) averaged over ECG records with different
pathologies.  No EMT is involved — this experiment is what motivates
DREAM's asymmetric MSB protection:

* SNR decreases monotonically (on trend) as the stuck bit moves toward
  the MSB;
* stuck-at-1 errors on MSBs hurt *less* than stuck-at-0 for apps whose
  samples are predominantly negative (the error is hidden by the sign
  run) and vice versa for predominantly positive data;
* matrix filtering sits well below the other curves because each output
  element depends on a full row and column of inputs.

The (app, stuck value, bit position) grid is expressed as a campaign
spec (:func:`fig2_spec`) executed through
:func:`repro.campaign.run_campaign`, so the 160-point paper grid
parallelises across workers and resumes from a result store.

When no store or extra workers are requested, the sweep instead runs
through the trial-batched pipeline: all 32 (stuck value, bit position)
configurations of one application stack into a single
:func:`~repro.mem.faults.position_fault_map_batch` and flow through the
memory fabric as one ``(32, n_words)`` batch per record — the same
numbers (the sweep is deterministic), an order of magnitude less Python
overhead (see PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import BiomedicalApp
from ..campaign.evaluators import geometry_to_dict
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..emt.base import NoProtection
from ..errors import ExperimentError
from ..mem.fabric import MemoryFabric
from ..mem.faults import position_fault_map_batch
from .common import ExperimentConfig, load_corpus, validate_registry_names

__all__ = [
    "Fig2Result",
    "fig2_result_from_records",
    "fig2_spec",
    "run_fig2",
]

#: Width of the paper's data words (and hence of the Fig 2 sweep).
_DATA_BITS = 16


@dataclass
class Fig2Result:
    """SNR series per application and stuck value.

    ``snr_db[app_name][stuck_value]`` is a length-16 list: the average
    output SNR with bit ``position`` of every data word stuck at
    ``stuck_value``.
    """

    positions: list[int] = field(default_factory=lambda: list(range(16)))
    snr_db: dict[str, dict[int, list[float]]] = field(default_factory=dict)
    config: ExperimentConfig | None = None

    def series(self, app_name: str, stuck_value: int) -> list[float]:
        """One plotted curve of Fig 2."""
        if app_name not in self.snr_db:
            raise ExperimentError(f"no data for app {app_name!r}")
        return self.snr_db[app_name][stuck_value]


def fig2_spec(
    app_names: tuple[str, ...],
    config: ExperimentConfig | None = None,
    name: str = "fig2",
) -> CampaignSpec:
    """The Fig 2 grid as a declarative campaign spec.

    Axes are (app, stuck value, bit position); the sweep is
    deterministic, so points carry no seed.
    """
    config = config or ExperimentConfig()
    validate_registry_names(app_names=app_names)
    return CampaignSpec(
        name=name,
        kind="bit_position",
        axes={
            "app": tuple(app_names),
            "stuck_value": (0, 1),
            "position": tuple(range(_DATA_BITS)),
        },
        fixed={
            "records": config.records,
            "duration_s": config.duration_s,
            "snr_cap_db": config.snr_cap_db,
            "geometry": geometry_to_dict(config.geometry),
            "data_bits": _DATA_BITS,
        },
    )


def run_fig2(
    app_names: tuple[str, ...] = (
        "dwt",
        "matrix_filter",
        "compressed_sensing",
        "morphology",
        "delineation",
    ),
    config: ExperimentConfig | None = None,
    apps: dict[str, BiomedicalApp] | None = None,
    n_workers: int = 1,
    store: ResultStore | None = None,
) -> Fig2Result:
    """Run the Fig 2 bit-significance sweep.

    Args:
        app_names: applications to characterise (default: the paper's
            five case studies).
        config: experiment knobs; Fig 2 is deterministic (no Monte
            Carlo), so only ``records`` and ``duration_s`` matter.
        apps: optional pre-built application instances (overrides
            ``app_names``); passing them runs the sweep inline, since
            instances cannot cross process boundaries.
        n_workers: worker processes for the campaign grid.
        store: optional campaign result store (resume/caching).

    Returns:
        A :class:`Fig2Result` with one SNR series per (app, stuck value).
    """
    config = config or ExperimentConfig()
    if apps is not None:
        return _run_fig2_inline(config, apps)
    if not app_names:
        # Degenerate grid: historically an empty result, not an error.
        return Fig2Result(config=config)
    if store is None and n_workers == 1:
        # No resume/parallelism requested: take the trial-batched fast
        # path (identical numbers — the sweep is deterministic).  Shared
        # per-process instances keep the clean reference outputs warm
        # across invocations.
        validate_registry_names(app_names=app_names)
        from ..apps.registry import cached_app

        return _run_fig2_inline(
            config, {name: cached_app(name) for name in app_names}
        )

    spec = fig2_spec(app_names, config)
    campaign = run_campaign(spec, store=store, n_workers=n_workers)
    campaign.raise_on_failure()
    return fig2_result_from_records(campaign.records, app_names, config)


def fig2_result_from_records(
    records: list[dict],
    app_names: tuple[str, ...],
    config: ExperimentConfig | None = None,
) -> Fig2Result:
    """Reassemble a :class:`Fig2Result` from ``bit_position`` records.

    ``records`` are campaign records of a :func:`fig2_spec` grid — live
    from :func:`repro.campaign.run_campaign` or reloaded from a result
    store.  The experiment API's figure reducer shares this path with
    :func:`run_fig2`, so both produce identical results from the same
    stored points.
    """
    by_point = {
        (
            rec["params"]["app"],
            rec["params"]["stuck_value"],
            rec["params"]["position"],
        ): rec["result"]["snr_db"]
        for rec in records
        if rec.get("status") == "ok"
    }
    result = Fig2Result(config=config)
    try:
        for name in app_names:
            result.snr_db[name] = {
                stuck: [
                    by_point[(name, stuck, position)]
                    for position in range(_DATA_BITS)
                ]
                for stuck in (0, 1)
            }
    except KeyError as exc:
        raise ExperimentError(
            f"fig2 records are missing grid point {exc.args[0]!r}"
        ) from exc
    return result


def _run_fig2_inline(
    config: ExperimentConfig, apps: dict[str, BiomedicalApp]
) -> Fig2Result:
    """In-process trial-batched sweep.

    All 32 (stuck value, bit position) fault configurations of one
    application stack into a single batched fault map, so each record
    makes exactly one pipeline pass instead of 32.  Configuration order
    matches the historical nested loop (stuck value outer, position
    inner), and the per-configuration corpus mean reduces the same
    per-record SNRs — the resulting curves are identical.
    """
    corpus = load_corpus(config)
    configurations = [
        (position, stuck_value)
        for stuck_value in (0, 1)
        for position in range(_DATA_BITS)
    ]
    fault_map = position_fault_map_batch(
        config.geometry.n_words, _DATA_BITS, configurations
    )
    result = Fig2Result(config=config)
    for name, app in apps.items():
        per_record = []
        for samples in corpus.values():
            fabric = MemoryFabric(
                NoProtection(),
                fault_map=fault_map,
                geometry=config.geometry,
                collect_decode_stats=False,
            )
            outputs = app.run_batch(samples, fabric)
            per_record.append(
                app.output_snr_batch(
                    samples, outputs, cap_db=config.snr_cap_db
                )
            )
        # (n_records, 32) -> per-configuration corpus mean.
        means = np.mean(np.stack(per_record, axis=0), axis=0)
        result.snr_db[name] = {
            0: [float(v) for v in means[:_DATA_BITS]],
            1: [float(v) for v in means[_DATA_BITS:]],
        }
    return result
