"""Tests for the campaign runner and the JSONL result store.

Covers the tentpole guarantees: worker-pool results identical to serial
execution, content-hash cache hits on resume (a second run executes zero
points), and graceful per-point failure capture with retry on resume.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    run_campaign,
)
from repro.errors import CampaignError

WORKLOAD = {"n_reads": 20_000, "n_writes": 20_000, "duration_s": 1e-3}


def energy_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="energy-test",
        kind="energy",
        axes={
            "emt": ("none", "dream", "secded"),
            "voltage": (0.9, 0.65, 0.5),
        },
        fixed={"workload": WORKLOAD},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def montecarlo_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="mc-test",
        kind="montecarlo",
        axes={"app": ("morphology",), "voltage": (0.6, 0.7)},
        fixed={
            "emts": ("none", "dream"),
            "records": ("100",),
            "duration_s": 3.0,
            "n_runs": 2,
            "seed": 20160314,
        },
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSerialExecution:
    def test_records_in_grid_order(self):
        result = run_campaign(energy_spec())
        assert len(result.records) == 9
        assert result.n_executed == 9
        assert result.n_cached == 0
        assert [r["params"]["emt"] for r in result.records[:3]] == ["none"] * 3
        assert all(r["status"] == "ok" for r in result.records)
        assert all(r["result"]["total_pj"] > 0 for r in result.records)
        assert all(r["elapsed_s"] >= 0 for r in result.records)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(CampaignError):
            run_campaign(energy_spec(), n_workers=0)

    def test_unknown_kind_is_captured_not_raised(self):
        result = run_campaign(energy_spec(kind="warp-drive"))
        assert result.n_failed == len(result.records)
        assert result.ok_records() == []
        assert "warp-drive" in result.failures()[0]["error"]
        with pytest.raises(CampaignError):
            result.raise_on_failure()

    def test_ok_records_filters_failures(self):
        """The README's library example filters on ok_records()."""
        spec = energy_spec(axes={"emt": ("none", "bch"), "voltage": (0.9,)})
        result = run_campaign(spec)
        assert len(result.ok_records()) == 1
        assert result.ok_records()[0]["params"]["emt"] == "none"

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_campaign(
            energy_spec(),
            progress=lambda done, total, rec: seen.append((done, total)),
        )
        assert seen == [(i, 9) for i in range(1, 10)]

    def test_duplicate_points_collapse_symmetrically(self, tmp_path):
        """Duplicate-hash grid points are one unit of work whether they
        execute or come from cache, and progress reaches the total."""
        spec = energy_spec(axes={"emt": ("none", "none"), "voltage": (0.9,)})
        store = ResultStore(tmp_path / "c.jsonl")
        seen = []
        first = run_campaign(
            spec, store=store,
            progress=lambda done, total, rec: seen.append((done, total)),
        )
        assert seen == [(1, 1)]
        assert (first.n_executed, first.n_cached) == (1, 0)
        assert len(first.records) == 2  # grid order still has both points
        second = run_campaign(spec, store=store)
        assert (second.n_executed, second.n_cached) == (0, 1)


class TestParallelEquivalence:
    def test_energy_grid_pool_matches_serial(self):
        serial = run_campaign(energy_spec())
        parallel = run_campaign(energy_spec(), n_workers=3)
        assert [r["result"] for r in serial.records] == [
            r["result"] for r in parallel.records
        ]

    def test_montecarlo_pool_matches_serial(self):
        """Deterministic per-point seeding: scheduling cannot change SNRs."""
        serial = run_campaign(montecarlo_spec())
        parallel = run_campaign(montecarlo_spec(), n_workers=2)
        assert [r["result"] for r in serial.records] == [
            r["result"] for r in parallel.records
        ]


class TestResume:
    def test_second_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        first = run_campaign(energy_spec(), store=store)
        assert (first.n_executed, first.n_cached) == (9, 0)
        second = run_campaign(energy_spec(), store=store)
        assert (second.n_executed, second.n_cached) == (0, 9)
        assert [r["result"] for r in first.records] == [
            r["result"] for r in second.records
        ]

    def test_superset_campaign_only_runs_new_points(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        run_campaign(
            energy_spec(axes={"emt": ("none",), "voltage": (0.9, 0.65)}),
            store=store,
        )
        grown = run_campaign(energy_spec(), store=store)
        assert grown.n_cached == 2
        assert grown.n_executed == 7

    def test_resume_false_reexecutes_and_supersedes(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        run_campaign(energy_spec(), store=store)
        fresh = run_campaign(energy_spec(), store=store, resume=False)
        assert (fresh.n_executed, fresh.n_cached) == (9, 0)
        # Fresh records are appended and supersede the stale ones.
        assert len(store.load()) == 9
        resumed = run_campaign(energy_spec(), store=store)
        assert (resumed.n_executed, resumed.n_cached) == (0, 9)

    def test_failed_points_are_retried(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        bad = energy_spec(axes={"emt": ("bch",), "voltage": (0.9,)})
        first = run_campaign(bad, store=store)
        assert first.n_failed == 1
        second = run_campaign(bad, store=store)
        assert second.n_executed == 1  # retried, not served from cache
        assert second.n_cached == 0

    def test_fresh_failure_recorded_in_store(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        run_campaign(
            energy_spec(axes={"emt": ("bch",), "voltage": (0.9,)}),
            store=store,
        )
        records = list(store.load().values())
        assert len(records) == 1
        assert records[0]["status"] == "failed"
        assert "bch" in records[0]["error"]
        assert records[0]["traceback"]


class TestResultStore:
    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "missing.jsonl")
        assert store.load() == {}
        assert store.completed_hashes() == set()
        assert len(store) == 0

    def test_append_requires_status_and_hash(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        with pytest.raises(CampaignError):
            store.append({"hash": "x", "status": "meh"})
        with pytest.raises(CampaignError):
            store.append({"status": "ok"})

    def test_later_records_supersede(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        store.append({"hash": "x", "status": "failed", "error": "boom"})
        store.append({"hash": "x", "status": "ok", "result": {"v": 1}})
        assert store.load()["x"]["status"] == "ok"
        assert store.completed_hashes() == {"x"}

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore(path)
        store.append({"hash": "x", "status": "ok", "result": {}})
        with path.open("a") as handle:
            handle.write('{"hash": "y", "status": "ok", "resu')  # torn write
        assert set(store.load()) == {"x"}

    def test_round_trips_json(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        record = {
            "hash": "x",
            "status": "ok",
            "result": {"total_pj": 1.2345678901234567e-3},
        }
        store.append(record)
        loaded = store.load()["x"]
        assert loaded == json.loads(json.dumps(record))
        assert loaded["result"]["total_pj"] == record["result"]["total_pj"]


class TestDefaultStoreRoot:
    def test_env_override_expands_user(self, monkeypatch):
        from pathlib import Path

        from repro.campaign.store import default_store_root

        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", "~/campaigns")
        root = default_store_root()
        assert "~" not in str(root)
        assert root == Path.home() / "campaigns"

    def test_env_override_plain_path(self, monkeypatch, tmp_path):
        from repro.campaign.store import default_store_root

        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert default_store_root() == tmp_path

    def test_default_without_env(self, monkeypatch):
        from pathlib import Path

        from repro.campaign.store import default_store_root

        monkeypatch.delenv("REPRO_CAMPAIGN_DIR", raising=False)
        assert default_store_root() == Path("benchmarks/results/campaigns")


class TestLoadMemoization:
    def append_n(self, store, n, start=0):
        for k in range(start, start + n):
            store.append({"hash": f"h{k}", "status": "ok", "result": k})

    def test_repeated_loads_parse_once(self, tmp_path):
        store = ResultStore(tmp_path / "memo.jsonl")
        self.append_n(store, 5)
        for _ in range(4):
            assert len(store.load()) == 5
        assert store.n_parses == 1

    def test_append_invalidates_memo(self, tmp_path):
        store = ResultStore(tmp_path / "memo.jsonl")
        self.append_n(store, 2)
        assert len(store.load()) == 2
        self.append_n(store, 1, start=2)
        assert len(store.load()) == 3
        assert store.n_parses == 2

    def test_external_write_invalidates_memo(self, tmp_path):
        store = ResultStore(tmp_path / "memo.jsonl")
        self.append_n(store, 1)
        store.load()
        # Another process appends behind this instance's back.
        other = ResultStore(tmp_path / "memo.jsonl")
        other.append({"hash": "ext", "status": "ok", "result": 9})
        assert "ext" in store.load()

    def test_returned_mapping_is_a_copy(self, tmp_path):
        store = ResultStore(tmp_path / "memo.jsonl")
        self.append_n(store, 2)
        first = store.load()
        first.pop("h0")
        assert len(store.load()) == 2


class TestCompaction:
    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path / "dup.jsonl")
        for _ in range(3):  # e.g. repeated resume=False re-runs
            store.append({"hash": "a", "status": "ok", "result": 1})
        store.append({"hash": "a", "status": "ok", "result": 99})
        store.append({"hash": "b", "status": "failed", "error": "x"})
        before = store.load()
        assert store.compact() == 3
        lines = [
            json.loads(line)
            for line in store.path.read_text().splitlines()
        ]
        assert len(lines) == 2
        assert store.load() == before
        assert store.load()["a"]["result"] == 99

    def test_compact_noop_when_unique(self, tmp_path):
        store = ResultStore(tmp_path / "unique.jsonl")
        store.append({"hash": "a", "status": "ok", "result": 1})
        text = store.path.read_text()
        assert store.compact() == 0
        assert store.path.read_text() == text

    def test_compact_missing_store(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").compact() == 0

    def test_compact_drops_malformed_lines(self, tmp_path):
        store = ResultStore(tmp_path / "torn.jsonl")
        store.append({"hash": "a", "status": "ok", "result": 1})
        with store.path.open("a") as handle:
            handle.write('{"hash": "torn", "status"')
        assert store.compact() == 1
        assert set(store.load()) == {"a"}
