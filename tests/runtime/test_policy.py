"""Tests for the operating-point policy engine."""

from __future__ import annotations

import pytest

from repro.errors import MissionError
from repro.runtime.policy import (
    POLICIES,
    HysteresisPolicy,
    LadderPoint,
    Observation,
    Policy,
    PolicyContext,
    QualityThresholdPolicy,
    SoCSchedulerPolicy,
    StaticPolicy,
    make_policy,
    policy_from_dict,
    policy_from_token,
    register_policy,
)


def ladder(n: int = 3) -> tuple[LadderPoint, ...]:
    return tuple(
        LadderPoint(
            index=i,
            emt_name="secded",
            voltage=0.6 + 0.1 * i,
            energy_per_window_pj=1e6 * (i + 1),
        )
        for i in range(n)
    )


def context(n: int = 3) -> PolicyContext:
    return PolicyContext(
        ladder=ladder(n), window_s=8.0, quality_floor_db=30.0,
        snr_cap_db=96.0,
    )


def obs(
    current: int = 1,
    last: float | None = 96.0,
    soc: float = 1.0,
    stress: float = 0.0,
    window: int = 5,
) -> Observation:
    return Observation(
        window_index=window,
        time_s=window * 8.0,
        soc=soc,
        last_snr_db=last,
        stress_hint=stress,
        current_index=current,
    )


class TestRegistry:
    def test_shipped_policies_registered(self):
        assert {"static", "quality", "soc", "hysteresis"} <= set(POLICIES)

    def test_make_policy_unknown(self):
        with pytest.raises(MissionError, match="unknown policy"):
            make_policy("pid")

    def test_make_policy_bad_params(self):
        with pytest.raises(MissionError, match="bad parameters"):
            make_policy("hysteresis", gain=2.0)

    def test_register_duplicate_rejected(self):
        class Dupe(StaticPolicy):
            name = "static"

        with pytest.raises(MissionError, match="already registered"):
            register_policy(Dupe)

    def test_register_needs_concrete_name(self):
        class Anon(Policy):
            def decide(self, o):
                return 0

        with pytest.raises(MissionError, match="concrete name"):
            register_policy(Anon)

    def test_policy_from_dict_forms(self):
        assert policy_from_dict("soc").name == "soc"
        policy = policy_from_dict(
            {"name": "hysteresis", "params": {"dwell": 2}}
        )
        assert policy.dwell == 2
        with pytest.raises(MissionError, match="needs a 'name'"):
            policy_from_dict({"params": {}})

    def test_policy_from_token(self):
        assert policy_from_token("quality").name == "quality"
        static = policy_from_token("static:dream@0.65")
        static.reset(
            PolicyContext(
                ladder=(
                    LadderPoint(0, "dream", 0.65, 1.0),
                    LadderPoint(1, "secded", 0.7, 2.0),
                ),
                window_s=8.0, quality_floor_db=30.0, snr_cap_db=96.0,
            )
        )
        assert static.decide(obs(current=1)) == 0

    def test_policy_from_token_errors(self):
        with pytest.raises(MissionError, match="only 'static'"):
            policy_from_token("soc:dream@0.65")
        with pytest.raises(MissionError, match="emt@voltage"):
            policy_from_token("static:dream")
        with pytest.raises(MissionError, match="bad voltage"):
            policy_from_token("static:dream@low")

    def test_decide_before_reset_raises(self):
        with pytest.raises(MissionError, match="before reset"):
            StaticPolicy().decide(obs())


class TestStatic:
    def test_defaults_to_top_rung(self):
        policy = StaticPolicy()
        policy.reset(context())
        assert policy.decide(obs(current=0)) == 2
        assert policy.describe() == "static:secded@0.80"

    def test_pinned_by_point_and_index(self):
        by_point = StaticPolicy(emt="secded", voltage=0.7)
        by_point.reset(context())
        assert by_point.decide(obs()) == 1
        by_index = StaticPolicy(index=0)
        by_index.reset(context())
        assert by_index.decide(obs()) == 0

    def test_point_not_on_ladder(self):
        policy = StaticPolicy(emt="dream", voltage=0.7)
        with pytest.raises(MissionError, match="not on the ladder"):
            policy.reset(context())

    def test_index_out_of_range(self):
        with pytest.raises(MissionError, match="out of range"):
            StaticPolicy(index=5).reset(context())

    def test_conflicting_arguments(self):
        with pytest.raises(MissionError, match="not both"):
            StaticPolicy(emt="secded", voltage=0.7, index=1)
        with pytest.raises(MissionError, match="together"):
            StaticPolicy(emt="secded")


class TestQualityThreshold:
    def test_steps_up_on_degradation(self):
        policy = QualityThresholdPolicy(target_db=40.0, margin_db=30.0)
        policy.reset(context())
        assert policy.decide(obs(current=1, last=20.0)) == 2

    def test_steps_down_above_band(self):
        policy = QualityThresholdPolicy(target_db=40.0, margin_db=30.0)
        policy.reset(context())
        assert policy.decide(obs(current=1, last=96.0)) == 0

    def test_holds_inside_band_and_on_first_window(self):
        policy = QualityThresholdPolicy(target_db=40.0, margin_db=30.0)
        policy.reset(context())
        assert policy.decide(obs(current=1, last=55.0)) == 1
        assert policy.decide(obs(current=1, last=None)) == 1

    def test_negative_margin_rejected(self):
        with pytest.raises(MissionError, match="non-negative"):
            QualityThresholdPolicy(margin_db=-1.0)


class TestSoCScheduler:
    def test_bands_map_soc_to_rungs(self):
        policy = SoCSchedulerPolicy()
        policy.reset(context())
        assert policy.decide(obs(soc=0.9)) == 2
        assert policy.decide(obs(soc=0.3)) == 1
        assert policy.decide(obs(soc=0.05)) == 0

    def test_band_validation(self):
        with pytest.raises(MissionError, match="at least one band"):
            SoCSchedulerPolicy(bands=())
        with pytest.raises(MissionError, match="descending"):
            SoCSchedulerPolicy(bands=((0.2, 0.5), (0.5, 1.0), (0.0, 0.0)))
        with pytest.raises(MissionError, match="cover SoC 0.0"):
            SoCSchedulerPolicy(bands=((0.5, 1.0),))
        with pytest.raises(MissionError, match=r"in \[0, 1\]"):
            SoCSchedulerPolicy(bands=((0.5, 1.5), (0.0, 0.0)))


class TestHysteresis:
    def test_feed_forward_jumps_on_stress(self):
        policy = HysteresisPolicy()
        policy.reset(context())
        assert policy.decide(obs(current=0, stress=0.8)) == 2

    def test_stress_never_steps_down(self):
        policy = HysteresisPolicy(stress_fraction=0.5)
        policy.reset(context())
        assert policy.decide(obs(current=2, stress=0.9)) == 2

    def test_climbs_below_band(self):
        policy = HysteresisPolicy(low_db=35.0)
        policy.reset(context())
        assert policy.decide(obs(current=0, last=20.0)) == 1

    def test_descends_only_after_dwell(self):
        policy = HysteresisPolicy(high_db=70.0, dwell=3)
        policy.reset(context())
        assert policy.decide(obs(current=2, last=96.0)) == 2
        assert policy.decide(obs(current=2, last=96.0)) == 2
        assert policy.decide(obs(current=2, last=96.0)) == 1

    def test_dwell_resets_inside_band(self):
        policy = HysteresisPolicy(high_db=70.0, dwell=2)
        policy.reset(context())
        assert policy.decide(obs(current=2, last=96.0)) == 2
        assert policy.decide(obs(current=2, last=50.0)) == 2  # resets
        assert policy.decide(obs(current=2, last=96.0)) == 2
        assert policy.decide(obs(current=2, last=96.0)) == 1

    def test_first_window_holds(self):
        policy = HysteresisPolicy()
        policy.reset(context())
        assert policy.decide(obs(current=1, last=None)) == 1

    def test_validation(self):
        with pytest.raises(MissionError, match="inverted"):
            HysteresisPolicy(low_db=50.0, high_db=40.0)
        with pytest.raises(MissionError, match="dwell"):
            HysteresisPolicy(dwell=0)
        with pytest.raises(MissionError, match="stress fraction"):
            HysteresisPolicy(stress_fraction=1.5)
