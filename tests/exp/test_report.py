"""Tests for the ASCII report renderers."""

from __future__ import annotations

import pytest

from repro.exp import (
    ExperimentConfig,
    overhead_table,
    run_energy_analysis,
    run_fig2,
    run_fig4,
    run_tradeoff,
)
from repro.exp.report import (
    format_energy_analysis,
    format_fig2,
    format_fig4,
    format_overheads,
    format_paper_example,
    format_tradeoff,
)
from repro.exp.tradeoff import paper_example_savings
from repro.errors import ExperimentError

FAST = ExperimentConfig(records=("100",), duration_s=3.0, n_runs=2)


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2(app_names=("morphology",), config=FAST)


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(
        app_names=("morphology",), config=FAST, voltages=(0.6, 0.9)
    )


class TestFormatFig2:
    def test_contains_both_stuck_values(self, fig2_result):
        text = format_fig2(fig2_result)
        assert "stuck-at-1" in text
        assert "stuck-at-0" in text
        assert "morphology" in text

    def test_all_bit_positions_present(self, fig2_result):
        text = format_fig2(fig2_result)
        for position in range(16):
            assert f"\n{position:>3}" in text or text.startswith(f"{position} ")


class TestFormatFig4:
    def test_panel_titles(self, fig4_result):
        assert "No protection" in format_fig4(fig4_result, "none")
        assert "DREAM" in format_fig4(fig4_result, "dream")
        assert "ECC SEC/DED" in format_fig4(fig4_result, "secded")

    def test_voltages_present(self, fig4_result):
        text = format_fig4(fig4_result, "dream")
        assert "0.60" in text and "0.90" in text

    def test_empty_result_rejected(self):
        from repro.exp.fig4 import Fig4Result

        with pytest.raises(ExperimentError):
            format_fig4(Fig4Result(), "none")


class TestFormatEnergy:
    def test_headline_lines(self):
        text = format_energy_analysis(run_energy_analysis())
        assert "paper: ~34%" in text
        assert "paper: ~55%" in text
        assert "paper: 1.28" in text
        assert "paper: 2.20" in text
        assert "21" in text


class TestFormatTradeoff:
    def test_policy_rendering(self, fig4_result):
        result = run_tradeoff(fig4_result, app_name="morphology",
                              tolerance_db=50.0)
        text = format_tradeoff(result)
        assert "Section VI-C" in text
        assert "morphology" in text
        assert "hybrid policy" in text

    def test_paper_example_rendering(self):
        text = format_paper_example(paper_example_savings())
        assert "12.7" in text
        assert "30.6" in text
        assert "39.5" in text


class TestFormatOverheads:
    def test_paper_row_values(self):
        text = format_overheads(overhead_table((16,)))
        assert "DREAM 5, ECC 6" in text
        assert "dream" in text and "secded" in text
