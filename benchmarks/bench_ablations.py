"""Ablation benches for the design decisions called out in DESIGN.md.

* **D2** — DREAM's *Set one bit* block: quality with vs without the
  implied-boundary-bit compensation.
* **D3** — mask-memory energy model: voltage-tracking (default) vs
  nominal-supply side array.
* **D5** — logical/physical scrambling: run-to-run SNR variance with a
  fixed defect map, with and without address randomisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_app
from repro.emt import DreamEMT, NoProtection
from repro.energy import EnergySystemModel
from repro.energy.accounting import Workload
from repro.mem import AddressMap, MemoryFabric, sample_fault_map
from repro.mem.layout import PAPER_GEOMETRY
from repro.signals import load_record


def test_d2_set_one_bit_ablation(benchmark, report_sink):
    """The boundary bit buys measurable SNR in the multi-error regime."""
    record = load_record("100", duration_s=8.0)
    app = make_app("dwt")
    variants = {
        "dream(+set-one-bit)": DreamEMT(compensate_boundary=True),
        "dream(-set-one-bit)": DreamEMT(compensate_boundary=False),
    }

    def sweep():
        snrs = {name: [] for name in variants}
        for seed in range(8):
            rng = np.random.default_rng(seed)
            shared = sample_fault_map(PAPER_GEOMETRY.n_words, 16, 3e-3, rng)
            for name, emt in variants.items():
                fabric = MemoryFabric(emt, fault_map=shared)
                out = app.run(record.samples, fabric)
                snrs[name].append(app.output_snr(record.samples, out))
        return {name: float(np.mean(v)) for name, v in snrs.items()}

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["D2 ablation — DWT @ BER 3e-3 (8 runs):"]
    for name, snr in means.items():
        lines.append(f"  {name:22s} {snr:6.2f} dB")
    gain = means["dream(+set-one-bit)"] - means["dream(-set-one-bit)"]
    lines.append(f"  set-one-bit gain: {gain:+.2f} dB")
    report_sink.add("ablation_d2_set_one_bit", "\n".join(lines))
    assert gain > 0.0


def test_d3_mask_memory_voltage_ablation(benchmark, report_sink):
    """Nominal-supply mask memory erodes DREAM's advantage at low V."""
    workload = Workload(n_reads=100_000, n_writes=100_000, duration_s=3e-3)

    def sweep():
        rows = []
        for voltage in (0.9, 0.8, 0.7, 0.6, 0.5):
            base = EnergySystemModel(NoProtection()).evaluate(voltage, workload)
            scaled = EnergySystemModel(
                DreamEMT(), mask_memory_scaled=True
            ).evaluate(voltage, workload)
            nominal = EnergySystemModel(
                DreamEMT(), mask_memory_scaled=False
            ).evaluate(voltage, workload)
            rows.append(
                (voltage, scaled.overhead_vs(base), nominal.overhead_vs(base))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["D3 ablation — DREAM overhead vs no protection:",
             "   V    mask tracks Vdd   mask at 0.9 V"]
    for voltage, scaled, nominal in rows:
        lines.append(f"  {voltage:.2f}   {scaled * 100:10.1f}%   {nominal * 100:10.1f}%")
    report_sink.add("ablation_d3_mask_memory", "\n".join(lines))
    # Tracking: flat ~34 %.  Nominal: grows as the data supply scales.
    assert rows[0][1] == pytest.approx(rows[-1][1], abs=0.02)
    assert rows[-1][2] > rows[0][2] + 0.3


def test_d5_scrambling_ablation(benchmark, report_sink):
    """Address randomisation turns fixed defects into per-run samples."""
    record = load_record("106", duration_s=8.0)
    app = make_app("morphology")
    rng = np.random.default_rng(7)
    fixed_defects = sample_fault_map(PAPER_GEOMETRY.n_words, 16, 2e-4, rng)

    def sweep():
        snrs = {"scrambled": [], "direct": []}
        for seed in range(8):
            scrambled = MemoryFabric(
                NoProtection(),
                fault_map=fixed_defects,
                address_map=AddressMap(
                    PAPER_GEOMETRY, rng=np.random.default_rng(seed)
                ),
            )
            direct = MemoryFabric(NoProtection(), fault_map=fixed_defects)
            for name, fabric in (("scrambled", scrambled), ("direct", direct)):
                out = app.run(record.samples, fabric)
                snrs[name].append(app.output_snr(record.samples, out))
        return snrs

    snrs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    spread = {name: float(np.std(v)) for name, v in snrs.items()}
    lines = [
        "D5 ablation — run-to-run SNR std-dev with fixed defects (8 runs):",
        f"  with scrambling:    {spread['scrambled']:.3f} dB",
        f"  without scrambling: {spread['direct']:.3f} dB",
    ]
    report_sink.add("ablation_d5_scrambling", "\n".join(lines))
    assert spread["direct"] == pytest.approx(0.0, abs=1e-9)
    assert spread["scrambled"] > 0.0
