"""The :class:`Session` facade: plan, execute and reduce experiments.

A session turns a declarative :class:`~repro.api.schema.Experiment`
into campaign specs (*planning*), executes every campaign through
:func:`repro.campaign.runner.run_campaign` on a pluggable execution
backend, persists results in content-hash-keyed
:class:`~repro.campaign.store.ResultStore` files, and wraps the
outcome in a uniform :class:`~repro.api.results.ResultHandle`.

Every workload kind flows through the same spine:

* ``figure`` experiments plan the historical campaign grids
  (:func:`repro.exp.fig2.fig2_spec`, :func:`repro.exp.fig4.fig4_spec`,
  :func:`repro.exp.energy_table.energy_spec`) and reduce records back
  to the historical result objects;
* ``sweep`` experiments plan the exact quality + per-app energy grids
  ``repro sweep`` always ran — point content hashes are unchanged, so
  existing stores resume;
* ``mission`` and ``cohort`` experiments plan one campaign over the
  policy axis, evaluated by the ``mission``/``cohort`` evaluator kinds.

Backends decide *how* campaigns run: ``inline`` executes in-process,
``multiprocessing`` fans points across a worker pool.  Pick one per
session (``Session(backend=...)``) or per experiment (the ``backend``
field); register custom backends (e.g. a remote executor) with
:func:`register_backend`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from .. import obs
from ..campaign.runner import CampaignResult, ProgressFn, run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..errors import ExperimentError, ExperimentSpecError, RunInterrupted
from . import serde
from .results import CampaignRun, ResultHandle
from .schema import (
    CohortParams,
    EnergyParams,
    Experiment,
    Fig2Params,
    Fig4Params,
    MissionParams,
    SweepParams,
    TradeoffParams,
    load_experiment,
)

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "MultiprocessingBackend",
    "BACKENDS",
    "register_backend",
    "backend_names",
    "make_backend",
    "PlannedCampaign",
    "Session",
]


# --------------------------------------------------------------------------
# Execution backends
# --------------------------------------------------------------------------


class ExecutionBackend(ABC):
    """How a session executes one campaign spec.

    Backends wrap :func:`repro.campaign.runner.run_campaign` with an
    execution strategy; they never change *what* runs (the spec and its
    point hashes), only where/how the points are evaluated — so results
    are bit-identical across backends.
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        resume: bool = True,
        progress: ProgressFn | None = None,
    ) -> CampaignResult:
        """Run one campaign and return its result."""


class InlineBackend(ExecutionBackend):
    """Serial in-process execution (no pool, per-point durability)."""

    name = "inline"

    def execute(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        resume: bool = True,
        progress: ProgressFn | None = None,
    ) -> CampaignResult:
        """Run every point in this process, in grid order."""
        return run_campaign(
            spec, store=store, n_workers=1, progress=progress, resume=resume
        )


class MultiprocessingBackend(ExecutionBackend):
    """Fan campaign points across a ``multiprocessing`` pool."""

    name = "multiprocessing"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ExperimentSpecError(
                f"workers must be >= 1, got {workers}"
            )
        self.workers = workers

    def execute(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        resume: bool = True,
        progress: ProgressFn | None = None,
    ) -> CampaignResult:
        """Run the campaign across the configured worker pool."""
        return run_campaign(
            spec,
            store=store,
            n_workers=self.workers,
            progress=progress,
            resume=resume,
        )


def _service_backend(workers: int) -> ExecutionBackend:
    """Factory of the ``service`` backend (lazy: breaks the import
    cycle — :mod:`repro.service` itself imports this module)."""
    from ..service.backend import ServiceBackend

    return ServiceBackend(workers=workers)


#: Registry of backend factories: name -> ``factory(workers) -> backend``.
BACKENDS: dict[str, Callable[[int], ExecutionBackend]] = {
    "inline": lambda workers: InlineBackend(),
    "multiprocessing": lambda workers: MultiprocessingBackend(workers),
    "service": _service_backend,
}


def register_backend(
    name: str, factory: Callable[[int], ExecutionBackend]
) -> None:
    """Register a custom execution backend under ``name``.

    ``factory`` receives the resolved worker count and returns a
    backend instance; experiments select it with ``backend = "name"``.
    """
    if not name:
        raise ExperimentSpecError("backend name must be non-empty")
    if name in BACKENDS:
        raise ExperimentSpecError(f"backend {name!r} already registered")
    BACKENDS[name] = factory


def backend_names() -> list[str]:
    """Names of all registered execution backends, sorted."""
    return sorted(BACKENDS)


def make_backend(name: str, workers: int) -> ExecutionBackend:
    """Instantiate a registered backend for ``workers`` processes."""
    if name not in BACKENDS:
        raise ExperimentSpecError(
            f"unknown execution backend {name!r}; "
            f"available: {backend_names()}"
        )
    return BACKENDS[name](workers)


# --------------------------------------------------------------------------
# Planning: Experiment -> campaign specs (+ reducers)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannedCampaign:
    """One campaign an experiment expands to.

    Attributes:
        role: the campaign's role (``"main"``, or ``"quality"``/
            ``"energy"`` for sweeps).
        spec: the grid to run.
        store_name: result-store basename, or ``None`` for an ephemeral
            campaign.
        intra_point_hint: name of an :data:`~repro.campaign.evaluators.
            EVALUATION_HINTS` entry carrying the session's worker count
            *inside* each point.  When set (and no backend was named
            explicitly), the session runs this campaign inline and the
            evaluator fans out within points instead — the right grain
            when points are few but internally parallel (a cohort's
            patients).  Results are bit-identical either way.
    """

    role: str
    spec: CampaignSpec
    store_name: str | None = None
    intra_point_hint: str | None = None


@dataclass(frozen=True)
class _Plan:
    """A planned experiment: campaigns plus its reduction callbacks."""

    campaigns: tuple[PlannedCampaign, ...]
    reducer: Callable[[ResultHandle], Any]
    summariser: Callable[[ResultHandle], dict]
    framer: Callable[[ResultHandle], list] | None = None

    def handle(
        self, experiment: Experiment, runs: list[CampaignRun]
    ) -> ResultHandle:
        """Wrap executed campaigns in the experiment's result handle."""
        return ResultHandle(
            experiment, runs, reducer=self.reducer,
            summariser=self.summariser, framer=self.framer,
        )


def _experiment_config(
    records: tuple[str, ...],
    duration_s: float,
    seed: int | None,
    runs: int | None = None,
):
    """An :class:`ExperimentConfig` honouring an optional seed override."""
    from ..exp.common import ExperimentConfig

    kwargs: dict[str, Any] = dict(records=records, duration_s=duration_s)
    if runs is not None:
        kwargs["n_runs"] = runs
    if seed is not None:
        kwargs["seed"] = seed
    return ExperimentConfig(**kwargs)


def resolved_mission_spec(params: MissionParams, seed: int | None):
    """The :class:`~repro.runtime.mission.MissionSpec` a mission
    experiment simulates: scenario, then scaling, then overrides — the
    exact resolution order of the ``mission`` campaign evaluator."""
    from ..runtime.scenarios import scenario_spec

    spec = scenario_spec(params.scenario)
    if params.duration_scale != 1.0:
        spec = spec.scaled(params.duration_scale)
    overrides: dict[str, Any] = {}
    if params.window_s is not None:
        overrides["window_s"] = params.window_s
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        spec = replace(spec, **overrides)
    return spec


def _policy_axis(policies: tuple, n_rungs: int | None) -> tuple:
    """Expand policy tokens to JSON-safe payloads, validating each.

    ``"static-ladder"`` expands to one pinned static policy per
    operating-point rung (requires ``n_rungs``); other strings are
    parsed as CLI tokens; mappings pass through.  Every resulting
    payload is validated against the policy registry before any grid
    work starts — a typo must fail fast, not after a long campaign.
    """
    from ..runtime.policy import policy_from_dict, policy_from_token

    payloads: list[Any] = []
    for token in policies:
        if isinstance(token, str) and token == "static-ladder":
            if n_rungs is None:
                raise ExperimentSpecError(
                    "'static-ladder' is only valid for mission experiments"
                )
            payloads.extend(
                {"name": "static", "params": {"index": i}}
                for i in range(n_rungs)
            )
        elif isinstance(token, str):
            policy_from_token(token)  # fail fast on unknown policies
            payloads.append(serde.policy_payload(token))
        else:
            policy_from_dict(token)
            payloads.append(dict(token))
    return tuple(payloads)


def _plan_figure(experiment: Experiment) -> _Plan:
    """Plan a paper-figure experiment (fig2/fig4/energy/tradeoff)."""
    from ..energy.technology import PAPER_VOLTAGE_GRID
    from ..exp.energy_table import energy_analysis_from_records, energy_spec
    from ..exp.fig2 import fig2_result_from_records, fig2_spec
    from ..exp.fig4 import fig4_result_from_records, fig4_spec

    params = experiment.params
    store = experiment.store

    if isinstance(params, Fig2Params):
        config = _experiment_config(
            params.records, params.duration_s, experiment.seed
        )
        spec = fig2_spec(params.apps, config, name=experiment.name)
        reducer = lambda h: fig2_result_from_records(  # noqa: E731
            h.records, params.apps, config
        )
    elif isinstance(params, Fig4Params):
        config = _experiment_config(
            params.records, params.duration_s, experiment.seed, params.runs
        )
        spec = fig4_spec(
            params.apps, params.emts, params.voltages, config,
            name=experiment.name,
        )
        reducer = lambda h: fig4_result_from_records(  # noqa: E731
            h.records, params.apps, params.voltages, config
        )
    elif isinstance(params, EnergyParams):
        from ..campaign.evaluators import measured_workload

        workload = measured_workload(
            app_name=params.workload_app,
            record=params.workload_record,
            duration_s=params.workload_duration_s,
        )
        spec = energy_spec(
            params.emts, params.voltages, workload, name=experiment.name
        )
        reducer = lambda h: energy_analysis_from_records(  # noqa: E731
            h.records, params.emts, params.voltages, workload
        )
    elif isinstance(params, TradeoffParams):
        from ..exp.tradeoff import run_tradeoff

        config = _experiment_config(
            params.records, params.duration_s, experiment.seed, params.runs
        )
        spec = fig4_spec(
            (params.app,), params.emts, PAPER_VOLTAGE_GRID, config,
            name=experiment.name,
        )

        def reducer(h, _config=config):
            fig4 = fig4_result_from_records(
                h.records, (params.app,), PAPER_VOLTAGE_GRID, _config
            )
            return run_tradeoff(
                fig4,
                app_name=params.app,
                tolerance_db=params.tolerance_db,
                emt_names=params.emts,
            )
    else:  # pragma: no cover - schema enforces the union
        raise ExperimentSpecError(
            f"unknown figure params {type(params).__name__}"
        )

    return _Plan(
        campaigns=(PlannedCampaign("main", spec, store),),
        reducer=reducer,
        summariser=lambda h: {"figure": params.KIND},
    )


def _plan_sweep(experiment: Experiment) -> _Plan:
    """Plan a design-space-exploration sweep.

    The construction is byte-for-byte the grid ``repro sweep``
    historically built — one Monte-Carlo quality campaign plus one
    energy campaign per application, stored under ``<base>-quality`` /
    ``<base>-energy`` — so point content hashes (and therefore stored
    results) carry over unchanged.
    """
    from ..exp.fig4 import fig4_spec

    params: SweepParams = experiment.params
    if "none" not in params.emts:
        # Fail before the (possibly hours-long) campaign: the frontier
        # savings and operating points are measured against this baseline.
        raise ExperimentError(
            "the baseline 'none' must be included in the sweep's emts"
        )
    base = experiment.store or experiment.name
    config = _experiment_config(
        params.records, params.duration_s, experiment.seed, params.runs
    )
    quality = fig4_spec(
        app_names=params.apps,
        emt_names=params.emts,
        voltages=params.voltages,
        config=config,
        name=f"{base}-quality",
    )
    # One energy spec per app (workload energy is application-specific),
    # all sharing one store: a point's content hash is independent of
    # the rest of the app list, so stored energy results survive
    # app-list changes.
    energy = tuple(
        CampaignSpec(
            name=f"{base}-energy",
            kind="energy",
            axes={"emt": params.emts, "voltage": params.voltages},
            fixed={
                "workload_app": app,
                "workload_record": params.records[0],
                "workload_duration_s": params.duration_s,
            },
        )
        for app in params.apps
    )

    def reducer(h: ResultHandle) -> dict[str, Any]:
        from ..campaign.analysis import (
            extract_tradeoff,
            pareto_frontier,
            quality_energy_rows,
        )
        from ..errors import CampaignError

        records = h.records
        out: dict[str, Any] = {}
        for app in params.apps:
            rows = quality_energy_rows(records, app)
            entry: dict[str, Any] = {"rows": rows}
            try:
                entry["frontier"] = pareto_frontier(
                    rows, x_key="energy_pj", y_key="snr_db"
                )
                entry["points"] = extract_tradeoff(
                    rows,
                    tolerance_db=params.tolerance_db,
                    voltages=params.voltages,
                )
            except CampaignError as error:
                # A failed point can leave this app unanalysable (e.g.
                # no baseline at nominal supply); record it and keep
                # going so the other apps still reduce.
                entry["error"] = str(error)
            out[app] = entry
        return out

    def summariser(h: ResultHandle) -> dict:
        from dataclasses import asdict

        reduced = h.result()
        apps: dict[str, Any] = {}
        for app, entry in reduced.items():
            if "error" in entry:
                apps[app] = {"error": entry["error"]}
            else:
                apps[app] = {
                    "frontier": entry["frontier"],
                    "operating_points": [asdict(p) for p in entry["points"]],
                }
        return {"tolerance_db": params.tolerance_db, "apps": apps}

    def framer(h: ResultHandle) -> list[dict]:
        # The sweep's analysis substrate: quality joined with energy by
        # (app, EMT, voltage) — what the frontier/trade-off extractors
        # (and therefore ``handle.pareto("energy_pj", "snr_db")``) read.
        reduced = h.result()
        return [row for entry in reduced.values() for row in entry["rows"]]

    return _Plan(
        campaigns=(
            PlannedCampaign("quality", quality, f"{base}-quality"),
            *(
                PlannedCampaign("energy", spec, f"{base}-energy")
                for spec in energy
            ),
        ),
        reducer=reducer,
        summariser=summariser,
        framer=framer,
    )


def _plan_mission(experiment: Experiment) -> _Plan:
    """Plan a closed-loop mission policy comparison."""
    params: MissionParams = experiment.params
    spec = resolved_mission_spec(params, experiment.seed)
    n_rungs = len({(e, v) for e in spec.emts for v in spec.voltages})
    fixed: dict[str, Any] = {"scenario": params.scenario}
    if params.duration_scale != 1.0:
        fixed["duration_scale"] = params.duration_scale
    if params.window_s is not None:
        fixed["window_s"] = params.window_s
    if experiment.seed is not None:
        fixed["seed"] = experiment.seed
    fixed["n_probe"] = params.probe_runs
    fixed["probe_duration_s"] = params.probe_duration_s
    campaign = CampaignSpec(
        name=experiment.name,
        kind="mission",
        axes={"policy": _policy_axis(params.policies, n_rungs)},
        fixed=fixed,
    )

    def reducer(h: ResultHandle) -> list:
        from ..runtime.mission import MissionResult

        return [
            MissionResult.from_dict(rec["result"]) for rec in h.ok_records()
        ]

    return _Plan(
        campaigns=(PlannedCampaign("main", campaign, experiment.store),),
        reducer=reducer,
        summariser=lambda h: {
            "scenario": params.scenario,
            "policies": [rec["result"] for rec in h.ok_records()],
        },
    )


def cohort_spec_for(experiment: Experiment):
    """The :class:`~repro.cohort.CohortSpec` a cohort experiment
    simulates (the experiment name seeds nothing — patient draws depend
    on ``(seed, index)`` only, exactly as the historical CLI)."""
    from ..cohort import CohortSpec, PatientModel

    params: CohortParams = experiment.params
    model_kwargs: dict[str, Any] = {"scenario_mix": params.scenarios}
    if params.pathology is not None:
        model_kwargs["record_mix"] = params.pathology
    if params.environment is not None:
        model_kwargs["environment_mix"] = params.environment
    if params.shielding is not None:
        model_kwargs["shielding_mix"] = params.shielding
    if params.battery_cv is not None:
        model_kwargs["battery_cv"] = params.battery_cv
    if params.battery_clip is not None:
        model_kwargs["battery_clip"] = params.battery_clip
    return CohortSpec(
        name=experiment.name,
        size=params.size,
        model=PatientModel(**model_kwargs),
        duration_scale=params.duration_scale,
        seed=experiment.seed if experiment.seed is not None else 2016,
    )


def _plan_cohort(experiment: Experiment) -> _Plan:
    """Plan a population-fleet policy comparison."""
    params: CohortParams = experiment.params
    cohort = cohort_spec_for(experiment)
    fixed: dict[str, Any] = {
        "cohort": cohort.to_dict(),
        "n_probe": params.probe_runs,
        "probe_duration_s": params.probe_duration_s,
    }
    if params.allow_failed_patients:
        fixed["allow_failed_patients"] = True
    campaign = CampaignSpec(
        name=experiment.name,
        kind="cohort",
        axes={"policy": _policy_axis(params.policies, None)},
        fixed=fixed,
    )

    def reducer(h: ResultHandle) -> dict[str, Any]:
        from ..cohort import population_frontier

        summaries = [dict(rec["result"]) for rec in h.ok_records()]
        survival = {
            s["policy"]: [tuple(pair) for pair in s.pop("survival", [])]
            for s in summaries
        }
        scored = [s for s in summaries if "survival_fraction" in s]
        return {
            "summaries": summaries,
            "survival": survival,
            "frontier": population_frontier(scored) if scored else [],
        }

    def summariser(h: ResultHandle) -> dict:
        reduced = h.result()
        return {
            "policies": reduced["summaries"],
            "frontier": reduced["frontier"],
        }

    return _Plan(
        campaigns=(
            PlannedCampaign(
                "main", campaign, experiment.store,
                # Few policy points, many patients each: fan out at the
                # patient level (the historical `repro cohort` grain)
                # unless a backend was named explicitly.
                intra_point_hint="cohort_workers",
            ),
        ),
        reducer=reducer,
        summariser=summariser,
    )


#: ``kind`` -> planner.
_PLANNERS: dict[str, Callable[[Experiment], _Plan]] = {
    "figure": _plan_figure,
    "sweep": _plan_sweep,
    "mission": _plan_mission,
    "cohort": _plan_cohort,
}


# --------------------------------------------------------------------------
# The session facade
# --------------------------------------------------------------------------


class Session:
    """Run declarative experiments through one configured entry point.

    Args:
        backend: execution-backend name overriding every experiment's
            own ``backend`` field (``None`` defers to the experiment,
            falling back to ``inline`` for one worker and
            ``multiprocessing`` otherwise).
        workers: worker count overriding every experiment's ``workers``
            field (``None`` defers; final fallback is 1).
        store_dir: root directory for result stores (``None`` uses
            ``$REPRO_CAMPAIGN_DIR`` or the repo default).
        fresh: when true, ignore stored results — every point
            re-executes and supersedes its stored record.
        progress: optional per-point callback
            ``(n_done, n_total, record)``, applied to every campaign.

    Example:
        >>> from repro.api import Session, experiment_from_payload
        >>> exp = experiment_from_payload({
        ...     "version": 1, "kind": "figure", "name": "quick",
        ...     "figure": {"figure": "fig2", "apps": ["morphology"],
        ...                "records": ["100"], "duration_s": 2.0},
        ... })
        >>> handle = Session().run(exp)
        >>> len(handle.result().series("morphology", 1))
        16
    """

    def __init__(
        self,
        backend: str | None = None,
        workers: int | None = None,
        store_dir: Path | str | None = None,
        fresh: bool = False,
        progress: ProgressFn | None = None,
    ) -> None:
        self.backend = backend
        self.workers = workers
        self.store_dir = store_dir
        self.fresh = fresh
        self.progress = progress

    # -- resolution --------------------------------------------------------

    def _coerce(self, experiment: Experiment | Path | str) -> Experiment:
        if isinstance(experiment, (str, Path)):
            return load_experiment(experiment)
        return experiment

    def resolve_backend(
        self, experiment: Experiment
    ) -> tuple[str, int]:
        """The (backend name, worker count) this session would use."""
        workers = self.workers
        if workers is None:
            workers = experiment.workers if experiment.workers else 1
        name = self._explicit_backend(experiment)
        if name is None:
            name = "inline" if workers <= 1 else "multiprocessing"
        return name, workers

    def _explicit_backend(self, experiment: Experiment) -> str | None:
        """The backend named by the session or experiment, if any.

        An explicitly-named backend always wins — including over a
        planned campaign's :attr:`PlannedCampaign.intra_point_hint`
        preference, so e.g. a custom remote backend is honoured for
        cohort fleets too.
        """
        return self.backend or experiment.backend

    def _store_for(self, name: str | None) -> ResultStore | None:
        if name is None:
            return None
        return ResultStore.for_campaign(name, root=self.store_dir)

    # -- the facade --------------------------------------------------------

    def plan(self, experiment: Experiment | Path | str) -> list[PlannedCampaign]:
        """Expand an experiment into its campaign plan without running.

        Planning validates everything executable about the experiment —
        registry names, scenario/cohort construction, policy tokens —
        and is what ``repro validate``/``repro describe`` call.  (An
        ``energy`` figure measures its workload here; the measurement
        is cached per process.)
        """
        experiment = self._coerce(experiment)
        return list(_PLANNERS[experiment.kind](experiment).campaigns)

    def validate(self, experiment: Experiment | Path | str) -> Experiment:
        """Schema- and plan-validate an experiment; return it on success."""
        experiment = self._coerce(experiment)
        name, _workers = self.resolve_backend(experiment)
        if name not in BACKENDS:
            raise ExperimentSpecError(
                f"unknown execution backend {name!r}; "
                f"available: {backend_names()}"
            )
        self.plan(experiment)
        return experiment

    def run_id_for(self, experiment: Experiment | Path | str) -> str:
        """The content-hash-keyed trace/run id of an experiment.

        Stable across processes and machines (it derives from the
        experiment's canonical content hash), so a traced run's JSONL
        sink is addressable before, during, and after the run:
        ``repro report <run-id>``.
        """
        experiment = self._coerce(experiment)
        return f"{experiment.name}-{experiment.content_hash()[:12]}"

    def _progress_for(
        self,
        experiment: Experiment,
        planned: PlannedCampaign,
        on_progress: Callable[[dict], None] | None,
    ) -> ProgressFn | None:
        """Fan one campaign's per-point progress to both consumers.

        The session-level ``progress`` callback keeps its historical
        positional form; ``on_progress`` (per run) receives structured
        heartbeat events — the hook a job service can stream from.  On
        a traced run the same heartbeat also lands in the trace as a
        ``run.progress`` gauge (flushed at bounded staleness), so
        ``repro watch`` follows the run with no callback wiring at all.
        """
        traced = obs.enabled()
        if on_progress is None and not traced:
            return self.progress

        def heartbeat(done: int, total: int, record: dict) -> None:
            if self.progress is not None:
                self.progress(done, total, record)
            if traced:
                obs.heartbeat(
                    "run.progress", done,
                    experiment=experiment.name,
                    campaign=planned.spec.name,
                    role=planned.role,
                    total=total,
                )
            if on_progress is not None:
                on_progress(
                    {
                        "experiment": experiment.name,
                        "campaign": planned.spec.name,
                        "role": planned.role,
                        "done": done,
                        "total": total,
                        "status": record.get("status"),
                        "elapsed_s": record.get("elapsed_s"),
                    }
                )

        return heartbeat

    def run(
        self,
        experiment: Experiment | Path | str,
        fresh: bool | None = None,
        on_progress: Callable[[dict], None] | None = None,
    ) -> ResultHandle:
        """Execute an experiment and return its :class:`ResultHandle`.

        Campaigns run in plan order; stored points resume unless
        ``fresh`` (argument or session default) disables it.

        ``on_progress`` is the run-level heartbeat: a callable invoked
        after every completed point with one JSON-safe event dict
        (``experiment``, ``campaign``, ``role``, ``done``, ``total``,
        ``status``, ``elapsed_s``) — independent of the session-level
        ``progress`` callback, which still fires as well.

        When tracing is configured (``REPRO_TRACE_DIR`` or the CLI's
        ``--trace``), the run opens its own JSONL sink keyed by
        :meth:`run_id_for` and closes it on exit;
        :meth:`ResultHandle.telemetry` reports where it landed.
        """
        from ..campaign.evaluators import evaluation_hints

        experiment = self._coerce(experiment)
        plan = _PLANNERS[experiment.kind](experiment)
        backend_name, workers = self.resolve_backend(experiment)
        backend = make_backend(backend_name, workers)
        resume = not (self.fresh if fresh is None else fresh)

        run_id = self.run_id_for(experiment)
        owns_trace = obs.start_run(
            run_id,
            name=experiment.name,
            attrs={
                "kind": experiment.kind,
                "backend": backend_name,
                "workers": workers,
            },
        )
        traced = obs.enabled()
        trace_path = obs.trace_path()
        trace_run = obs.trace_run_id()

        # A run that opened its own trace sink also registers in the
        # run registry beside it: `repro runs` lists it immediately
        # (status `running`), and the finalize below flips it to its
        # terminal state with wall time and headline metrics.
        registry = None
        registry_id = trace_run or run_id
        if owns_trace and traced and trace_path is not None:
            registry = obs.RunRegistry(Path(trace_path).parent)
            registry.register(
                registry_id,
                name=experiment.name,
                kind=experiment.kind,
                spec_digest=experiment.content_hash(),
                trace_path=trace_path,
            )

        status = "ok"
        error_text: str | None = None
        runs: list[CampaignRun] = []
        started = time.perf_counter()
        cpu_started = time.process_time()
        try:
            with obs.span(
                "session.run",
                experiment=experiment.name,
                kind=experiment.kind,
                backend=backend_name,
                workers=workers,
            ):
                for planned in plan.campaigns:
                    store = self._store_for(planned.store_name)
                    progress = self._progress_for(
                        experiment, planned, on_progress
                    )
                    if (
                        planned.intra_point_hint
                        and workers > 1
                        and self._explicit_backend(experiment) is None
                    ):
                        # Fan out *inside* each point (e.g. a cohort's
                        # patients across processes) rather than across
                        # the few points: the campaign itself runs
                        # inline so the hint stays in this process, and
                        # results are bit-identical.
                        with evaluation_hints(
                            **{planned.intra_point_hint: workers}
                        ):
                            result = InlineBackend().execute(
                                planned.spec, store=store, resume=resume,
                                progress=progress,
                            )
                    else:
                        result = backend.execute(
                            planned.spec, store=store, resume=resume,
                            progress=progress,
                        )
                    runs.append(
                        CampaignRun(planned.role, planned.spec, result, store)
                    )
        except BaseException as exc:
            # Cancellation (SIGINT/SIGTERM or an injected interrupt) is
            # not a failure: completed work was drained and persisted
            # on the way out, so the run is resumable — the registry
            # row says so.
            if isinstance(exc, (KeyboardInterrupt, RunInterrupted)):
                status = "interrupted"
            else:
                status = "failed"
            error_text = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            wall_s = time.perf_counter() - started
            # Close the trace before flipping the registry record to a
            # terminal status: a watcher that sees `ok`/`failed` can
            # rely on the sink being complete on disk.
            if owns_trace:
                obs.disable()
            if registry is not None:
                n_failed = sum(run.result.n_failed for run in runs)
                if status == "ok" and n_failed:
                    status = "failed"
                    error_text = f"{n_failed} point(s) failed"
                registry.finalize(
                    registry_id,
                    status,
                    wall_s=wall_s,
                    metrics={
                        "n_points": sum(
                            run.result.n_executed + run.result.n_cached
                            for run in runs
                        ),
                        "n_executed": sum(
                            run.result.n_executed for run in runs
                        ),
                        "n_cached": sum(
                            run.result.n_cached for run in runs
                        ),
                        "n_failed": n_failed,
                    },
                    error=error_text,
                    # Owner-process resource headline (workers report
                    # through their proc.* trace gauges instead).
                    peak_rss_bytes=obs.peak_rss_bytes(),
                    cpu_s=time.process_time() - cpu_started,
                )
        handle = plan.handle(experiment, runs)
        handle._telemetry = {
            "enabled": traced,
            "run_id": trace_run,
            "trace_path": str(trace_path) if trace_path else None,
            "wall_s": wall_s,
        }
        return handle

    def attach(self, experiment: Experiment | Path | str) -> ResultHandle:
        """A lazy result view over the experiment's stores — no execution.

        Every planned point whose content hash has a stored record is
        surfaced (counted as cached); points never run are simply
        absent.  Use this to re-analyse a finished (or half-finished)
        experiment without touching the grid.
        """
        experiment = self._coerce(experiment)
        plan = _PLANNERS[experiment.kind](experiment)
        runs = []
        for planned in plan.campaigns:
            store = self._store_for(planned.store_name)
            stored = store.load() if store is not None else {}
            result = CampaignResult(spec_name=planned.spec.name)
            for point in planned.spec.expand():
                record = stored.get(point.content_hash())
                if record is not None:
                    result.records.append(record)
                    result.n_cached += 1
                    if record.get("status") == "failed":
                        result.n_failed += 1
            runs.append(
                CampaignRun(planned.role, planned.spec, result, store)
            )
        return plan.handle(experiment, runs)

    def describe(self, experiment: Experiment | Path | str) -> str:
        """A human-readable plan: campaigns, grid sizes, store targets."""
        experiment = self._coerce(experiment)
        backend_name, workers = self.resolve_backend(experiment)
        campaigns = self.plan(experiment)
        kind = experiment.kind
        if kind == "figure":
            kind = f"figure/{experiment.params.KIND}"
        lines = [
            f"experiment {experiment.name!r} — kind={kind}, "
            f"schema v{experiment.version}, "
            f"hash {experiment.content_hash()[:12]}",
            f"  backend: {backend_name}, {workers} worker(s)"
            + (f", seed {experiment.seed}" if experiment.seed is not None
               else ""),
        ]
        total = 0
        for planned in campaigns:
            n_points = len(planned.spec.expand())
            total += n_points
            target = (
                str(self._store_for(planned.store_name).path)
                if planned.store_name
                else "(not persisted)"
            )
            lines.append(
                f"  [{planned.role}] campaign {planned.spec.name!r}: "
                f"kind={planned.spec.kind}, {n_points} points -> {target}"
            )
        lines.append(f"  total: {total} points")
        return "\n".join(lines)
