"""Campaign execution: fan a spec's grid across a worker pool.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec`, skips
every point whose content hash already has a successful record in the
:class:`~repro.campaign.store.ResultStore` (resume), and evaluates the
remainder — serially, or across a supervised worker pool
(:class:`~repro.resilience.SupervisedPool`) when ``n_workers > 1``.
Each point is evaluated by a pure function of its parameters with
deterministic per-point seeding, so worker-pool and serial executions
produce identical results regardless of scheduling order — and a
*retried* point (after a worker crash, timeout, or injected transient
fault) is bit-identical to a first-try point.

Failures are captured, not fatal: an evaluator exception becomes a
``status == "failed"`` record carrying the error text, the campaign keeps
going, and failed points are retried on the next run.  Infrastructure
faults — a dead worker, an overstayed deadline, a transport error, an
injected chaos fault — are retried *within* the run with backoff, and a
point that exhausts its attempts is quarantined as a ``failed`` record
carrying its attempt history instead of hanging the drain.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from .. import obs
from ..errors import CampaignError, RunInterrupted
from ..resilience import SupervisedPool, WorkOutcome, active_chaos, retry_serial
from .evaluators import evaluate_point
from .spec import CampaignPoint, CampaignSpec
from .store import ResultStore

__all__ = ["CampaignResult", "run_campaign"]

#: Bounded retry of a store append (transient ENOSPC-style faults).
_STORE_WRITE_ATTEMPTS = 5

#: Signature of the optional progress callback:
#: ``progress(n_done, n_total, record)`` after every completed point.
ProgressFn = Callable[[int, int, dict], None]


@dataclass
class CampaignResult:
    """Outcome of one campaign run (fresh evaluations plus cache hits).

    Attributes:
        spec_name: the campaign's name.
        records: one record per expanded point, in grid order.  Each has
            ``hash``, ``kind``, ``params``, ``status`` (``"ok"`` or
            ``"failed"``), and ``result`` (ok) or ``error`` (failed).
        n_executed: points evaluated in this invocation.
        n_cached: points satisfied from the result store.
        n_failed: points whose evaluator raised (this invocation or a
            cached failure that was retried and failed again).
    """

    spec_name: str
    records: list[dict] = field(default_factory=list)
    n_executed: int = 0
    n_cached: int = 0
    n_failed: int = 0

    def ok_records(self) -> list[dict]:
        """Records of successfully evaluated points only."""
        return [rec for rec in self.records if rec["status"] == "ok"]

    def failures(self) -> list[dict]:
        """Records of failed points (with their ``error`` text)."""
        return [rec for rec in self.records if rec["status"] == "failed"]

    def raise_on_failure(self) -> None:
        """Raise :class:`CampaignError` if any point failed.

        The first failure's captured worker traceback is included — with
        no result store attached it would otherwise be lost, leaving no
        file/line to locate the fault.
        """
        failed = self.failures()
        if failed:
            first = failed[0]
            detail = first.get("traceback", "")
            raise CampaignError(
                f"{len(failed)} of {len(self.records)} points of campaign "
                f"{self.spec_name!r} failed; first: {first['error']}"
                + (f"\n{detail}" if detail else "")
            )


def _evaluate_payload(payload: tuple[str, CampaignPoint]) -> dict:
    """Worker entry point: evaluate one point, never raise."""
    point_hash, point = payload
    started = time.perf_counter()
    record = {
        "hash": point_hash,
        "kind": point.kind,
        "params": point.params,
        # Axis coordinates alone — what identifies the point in logs,
        # without the (possibly large) shared fixed parameters.
        "coords": dict(point.coords),
    }
    # In a pool worker this span is the process's top level, so closing
    # it flushes the worker's buffer — pool teardown (terminate) cannot
    # lose completed points.
    with obs.span(
        "point",
        **{"kind": point.kind, "hash": point_hash[:12], **point.coords},
    ) as point_span:
        try:
            record["result"] = evaluate_point(point)
            record["status"] = "ok"
            obs.counter("campaign.points_ok")
        except RunInterrupted:
            # Cancellation of a nested drain (a cohort point runs its
            # own fleet pool) is a run-level event, not a point failure.
            raise
        except Exception as exc:  # noqa: BLE001 - failure capture is the point
            record["status"] = "failed"
            record["error"] = f"{type(exc).__name__}: {exc}"
            record["traceback"] = traceback.format_exc(limit=20)
            obs.counter("campaign.points_failed")
            point_span.fail(record["error"])
            if point_span.span_id is not None:
                # Cross-reference the trace from the failure record (and
                # vice versa) — but only when traced, so stored records
                # are byte-identical in untraced runs.
                record["span"] = point_span.span_id
    record["elapsed_s"] = round(time.perf_counter() - started, 6)
    # Throttled per-process resource gauges (worker RSS/CPU) at the
    # per-point seam — one boolean check when untraced.
    obs.resource_probe()
    return record


def _quarantine_record(
    point_hash: str, point: CampaignPoint, outcome: WorkOutcome
) -> dict:
    """The ``failed`` record of a point that exhausted its attempts.

    Every attempt died on an infrastructure fault (worker crash,
    deadline, transport error, injected chaos), so there is no
    evaluator record to store — this one is honest about what happened:
    the real cumulative elapsed time, the attempt count, and the
    per-attempt history (satellite of the old ``_on_error`` path, which
    fabricated ``elapsed_s: 0.0`` for transport faults).
    """
    last = outcome.history[-1] if outcome.history else {}
    record = {
        "hash": point_hash,
        "kind": point.kind,
        "params": point.params,
        "coords": dict(point.coords),
        "status": "failed",
        "error": last.get("error", "quarantined"),
        "elapsed_s": round(
            sum(entry.get("elapsed_s", 0.0) for entry in outcome.history), 6
        ),
        "attempts": outcome.attempts,
        "attempt_history": [
            {k: v for k, v in entry.items() if k != "traceback"}
            for entry in outcome.history
        ],
    }
    if last.get("traceback"):
        record["traceback"] = last["traceback"]
    return record


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    n_workers: int = 1,
    progress: ProgressFn | None = None,
    resume: bool = True,
    points: list[CampaignPoint] | None = None,
) -> CampaignResult:
    """Execute (or resume) a campaign.

    Args:
        spec: the declarative grid to explore.
        store: optional result store; when given, points whose hash
            already has a successful record are *not* re-evaluated, and
            every fresh evaluation is appended as it completes.
        n_workers: worker processes; ``1`` runs in-process (no pool).
        progress: optional callback invoked after every point (cached or
            fresh) with ``(n_done, n_total, record)``.
        resume: when false, stored results are ignored and every point
            re-executes — but fresh records are still appended, so they
            supersede the stale ones (later records win on load).
        points: explicit point list overriding ``spec.expand()`` — the
            seam a remote executor uses to ship a grid whose filters
            (arbitrary callables, applied at expansion time in the
            submitting process) cannot cross a process boundary.  Point
            content hashes depend only on kind + merged parameters, so
            results are identical either way.

    Returns:
        A :class:`CampaignResult` with records in grid order.
    """
    if n_workers < 1:
        raise CampaignError(f"n_workers must be >= 1, got {n_workers}")
    with obs.span(
        "campaign", campaign=spec.name, kind=spec.kind, workers=n_workers
    ) as campaign_span:
        result = _run_campaign_traced(
            spec, store, n_workers, progress, resume, campaign_span,
            points=points,
        )
        obs.counter("campaign.points_executed", result.n_executed)
        obs.counter("campaign.points_cached", result.n_cached)
        if result.n_failed:
            obs.counter("campaign.points_failed", result.n_failed)
    return result


def _run_campaign_traced(
    spec: CampaignSpec,
    store: ResultStore | None,
    n_workers: int,
    progress: ProgressFn | None,
    resume: bool,
    campaign_span,
    points: list[CampaignPoint] | None = None,
) -> CampaignResult:
    """The body of :func:`run_campaign`, under its campaign span."""
    if points is None:
        points = spec.expand()
    cached: dict[str, dict] = {}
    if store is not None and resume:
        stored = store.load()
        cached = {
            h: rec for h, rec in stored.items() if rec.get("status") == "ok"
        }

    result = CampaignResult(spec_name=spec.name)
    by_hash: dict[str, dict] = {}
    n_done = 0

    # Hash once per point; duplicate-hash points (degenerate grids)
    # collapse to one unit of work so executed/cached accounting stays
    # symmetric and progress always reaches the total.
    point_hashes = [point.content_hash() for point in points]
    unique: dict[str, CampaignPoint] = {}
    for point_hash, point in zip(point_hashes, points):
        unique.setdefault(point_hash, point)
    total = len(unique)

    todo: list[tuple[str, CampaignPoint]] = []
    for point_hash, point in unique.items():
        if point_hash in cached:
            by_hash[point_hash] = cached[point_hash]
            result.n_cached += 1
            n_done += 1
            if progress is not None:
                progress(n_done, total, cached[point_hash])
        else:
            todo.append((point_hash, point))
    if n_done:
        obs.heartbeat(
            "campaign.progress", n_done, campaign=spec.name, total=total
        )

    def _persist(records: list[dict]) -> None:
        """One locked store write, with bounded retry on write faults.

        A transient ``OSError`` (a full disk that frees up, an injected
        ENOSPC from the chaos layer) is retried a few times before it
        fails the campaign — completed evaluations should survive a
        hiccup at the persistence seam.
        """
        if store is None:
            return
        chaos = active_chaos()
        for attempt in range(1, _STORE_WRITE_ATTEMPTS + 1):
            try:
                chaos.inject_store_write(records[0]["hash"], attempt)
                store.append_many(records)
                return
            except OSError as exc:
                if attempt >= _STORE_WRITE_ATTEMPTS:
                    raise CampaignError(
                        f"store append failed after {attempt} attempts: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                obs.counter("store.write_retries")
                time.sleep(0.02 * attempt)

    def _absorb_many(records: list[dict]) -> None:
        """Fold a tick's completed points in: one locked store write."""
        nonlocal n_done
        for record in records:
            by_hash[record["hash"]] = record
            result.n_executed += 1
            if record["status"] == "failed":
                result.n_failed += 1
        _persist(records)
        for record in records:
            n_done += 1
            if progress is not None:
                progress(n_done, total, record)
        obs.heartbeat(
            "campaign.progress", n_done, campaign=spec.name, total=total
        )

    def _record_of(
        outcome: WorkOutcome, payload: tuple[str, CampaignPoint]
    ) -> dict:
        if outcome.status == "completed":
            return outcome.value
        return _quarantine_record(payload[0], payload[1], outcome)

    if todo:
        if n_workers == 1 or len(todo) == 1:
            # Serial execution keeps per-point durability: every point
            # is persisted before the next one starts.  retry_serial
            # shares the pool's retry/chaos semantics in-process.
            chaos = active_chaos()
            n_fresh = 0
            for payload in todo:
                outcome = retry_serial(
                    _evaluate_payload, payload[0], payload, name="campaign"
                )
                _absorb_many([_record_of(outcome, payload)])
                n_fresh += 1
                chaos.check_interrupt(n_fresh)
        else:
            # Supervised pool execution: dead workers are respawned and
            # their claimed points requeued, transient faults retry
            # with backoff, and poison points are quarantined instead
            # of hanging the drain.  The pool yields every point that
            # completed since the last tick, so a burst of fast points
            # still costs one store append (single open + flock).
            by_key = dict(todo)
            pool = SupervisedPool(
                _evaluate_payload,
                min(n_workers, len(todo)),
                name="campaign",
            )
            # Workers spawned inside worker_parent() (including
            # respawns after a crash) inherit the campaign span id, so
            # their per-point spans hang off this campaign in the
            # report's tree.
            with obs.worker_parent(campaign_span.span_id):
                # Work key = point hash; payload = the same (hash,
                # point) tuple _evaluate_payload always took.
                for outcomes in pool.run([(h, (h, p)) for h, p in todo]):
                    _absorb_many(
                        [
                            _record_of(o, (o.key, by_key[o.key]))
                            for o in outcomes
                        ]
                    )

    result.records = [by_hash[h] for h in point_hashes]
    return result
