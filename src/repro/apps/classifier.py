"""Heartbeat classifier — the statistical-output consumer of Section III.

The paper motivates relaxed reliability with the Heartbeat Classifier of
[9] (wavelet delineation + compressed sensing): beats are "sorted out
according to different classes of morphologies", a coarse-grained
decision that tolerates imprecision.  This module implements that
downstream stage as a nearest-centroid classifier over per-beat features
derived from the delineation output:

* QRS width (S - Q, in samples),
* normalised R amplitude,
* RR-interval ratio to the running mean (prematurity).

It is not one of the five Fig 2/Fig 4 case studies; it powers the WBSN
pipeline example and the extension benches, and demonstrates class-label
stability as an application-level quality metric (fraction of beats whose
class survives memory corruption).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..mem.fabric import MemoryFabric
from .base import BiomedicalApp
from .delineation import NO_POINT, WaveletDelineationApp

__all__ = ["BeatClass", "HeartbeatClassifierApp", "CLASS_CENTROIDS"]


@dataclass(frozen=True)
class BeatClass:
    """One morphology class with its feature centroid."""

    label: str
    index: int
    qrs_width_s: float
    r_amplitude: float
    rr_ratio: float


#: Feature centroids (textbook values): normal, ventricular, atrial.
CLASS_CENTROIDS = (
    BeatClass("N", 0, qrs_width_s=0.08, r_amplitude=0.45, rr_ratio=1.0),
    BeatClass("V", 1, qrs_width_s=0.16, r_amplitude=0.75, rr_ratio=0.75),
    BeatClass("A", 2, qrs_width_s=0.08, r_amplitude=0.40, rr_ratio=0.80),
)


class HeartbeatClassifierApp(BiomedicalApp):
    """Delineation followed by nearest-centroid morphology classification.

    The output buffer holds one int per beat slot: the class index, or
    ``NO_POINT`` for empty slots — a *statistical* output in the paper's
    sense.
    """

    name = "classifier"
    description = "nearest-centroid heartbeat morphology classifier"

    def __init__(
        self,
        fs_hz: float = 360.0,
        window: int = 1024,
        slots_per_window: int = 8,
    ) -> None:
        super().__init__()
        self.fs_hz = fs_hz
        self.delineator = WaveletDelineationApp(
            fs_hz=fs_hz, window=window, slots_per_window=slots_per_window
        )

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        annotations = self.delineator.run(arr, fabric).reshape(-1, 5)
        labels = self._classify(arr, annotations)
        return fabric.roundtrip("classifier.output", labels)

    def _classify(
        self, samples: np.ndarray, annotations: np.ndarray
    ) -> np.ndarray:
        """Map each annotated beat to its nearest centroid."""
        r_indices = annotations[:, 2]
        valid = r_indices != NO_POINT
        labels = np.full(annotations.shape[0], NO_POINT, dtype=np.int64)
        valid_rows = np.flatnonzero(valid)
        if valid_rows.size == 0:
            return labels

        r_values = r_indices[valid_rows]
        rr = np.diff(r_values.astype(np.float64), prepend=r_values[0])
        mean_rr = float(rr[1:].mean()) if rr.size > 1 else self.fs_hz * 0.8
        if mean_rr <= 0:
            mean_rr = self.fs_hz * 0.8
        peak_scale = float(np.percentile(np.abs(samples), 99.5)) or 1.0

        for row_position, row in enumerate(valid_rows):
            p, q, r, s, t = annotations[row]
            width_s = (
                (s - q) / self.fs_hz
                if q != NO_POINT and s != NO_POINT and s > q
                else 0.10
            )
            r_in_window = int(r)
            if not 0 <= r_in_window < samples.size:
                continue
            amplitude = abs(float(samples[r_in_window])) / peak_scale
            ratio = (
                float(rr[row_position]) / mean_rr if row_position > 0 else 1.0
            )
            labels[row] = self._nearest(width_s, amplitude, ratio)
        return labels

    @staticmethod
    def _nearest(width_s: float, amplitude: float, rr_ratio: float) -> int:
        """Nearest centroid in the (scaled) feature space."""
        best_index, best_distance = 0, float("inf")
        for centroid in CLASS_CENTROIDS:
            distance = (
                ((width_s - centroid.qrs_width_s) / 0.08) ** 2
                + (amplitude - centroid.r_amplitude) ** 2
                + ((rr_ratio - centroid.rr_ratio) / 0.5) ** 2
            )
            if distance < best_distance:
                best_index, best_distance = centroid.index, distance
        return best_index

    def class_stability(
        self, samples: np.ndarray, corrupted_output: np.ndarray
    ) -> float:
        """Fraction of slots whose class label survives corruption."""
        reference = self.reference_output(samples)
        corrupted = np.asarray(corrupted_output, dtype=np.int64)
        if reference.shape != corrupted.shape:
            raise SignalError("output shapes differ between runs")
        return float(np.mean(reference == corrupted))
