"""Energy, area and technology models (paper Sections V, VI-B, VI-C).

The paper derives memory energy from CACTI 6.5 and encoder/decoder energy
and area from Synopsys Design Compiler synthesis reports, for a 32 nm
low-power node at 343 K, and profiles the memory's Bit Error Rate per
supply voltage.  None of those tools are available offline, so this
package provides calibrated analytical stand-ins:

* :mod:`repro.energy.technology` — node constants, voltage scaling laws
  and the BER(V) calibration table,
* :mod:`repro.energy.sram_model` — "CACTI-lite": an analytical banked-SRAM
  energy/leakage/area model,
* :mod:`repro.energy.logic_model` — gate-equivalent models of the EMT
  encoders and decoders,
* :mod:`repro.energy.accounting` — whole-memory-system energy reports
  combining data memory, DREAM's mask memory and the EMT logic.
"""

from .accounting import EnergyBreakdown, EnergySystemModel
from .battery import BatteryModel, BatteryState, estimate_lifetime
from .logic_model import LogicBlockModel, logic_blocks_for
from .sram_model import SramArrayModel
from .technology import TECH_32NM_LP, Technology

__all__ = [
    "BatteryModel",
    "BatteryState",
    "estimate_lifetime",
    "EnergyBreakdown",
    "EnergySystemModel",
    "LogicBlockModel",
    "logic_blocks_for",
    "SramArrayModel",
    "TECH_32NM_LP",
    "Technology",
]
