"""CLI logging: one ``repro`` logger, stderr-only, level-prefixed.

The CLI's contract is that **stdout carries only the product** (tables,
JSON, reports) and every diagnostic — progress, deprecation notes,
failure details — goes to stderr.  This module owns that stderr side:
:func:`configure` binds a single stream handler for the ``repro``
logger hierarchy at the verbosity the user picked (``-q`` errors only,
default informational, ``-v`` debug).

``configure`` is called at the top of every ``main()`` invocation and
re-binds the handler to the *current* ``sys.stderr`` — under pytest's
``capsys`` (and anything else that swaps the stream per call) a handler
captured at import time would write into a closed buffer.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

__all__ = ["LOGGER_NAME", "get_logger", "configure", "level_for"]

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"

#: Marker attribute identifying the handler :func:`configure` manages.
_HANDLER_MARK = "_repro_cli_handler"


class _LevelFormatter(logging.Formatter):
    """Prefix non-informational records with their lowercased level.

    Informational lines print bare (they are user-facing narration);
    ``warning:``/``error:``/``debug:`` prefixes keep the historical CLI
    stderr format that scripts and tests grep for.
    """

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.levelno == logging.INFO:
            return message
        return f"{record.levelname.lower()}: {message}"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if name:
        return logging.getLogger(f"{LOGGER_NAME}.{name}")
    return logging.getLogger(LOGGER_NAME)


def level_for(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a logging level.

    Negative (``-q``) shows only errors, zero is the informational
    default, positive (``-v``) enables debug output.
    """
    if verbosity < 0:
        return logging.ERROR
    if verbosity > 0:
        return logging.DEBUG
    return logging.INFO


def configure(
    verbosity: int = 0, stream: TextIO | None = None
) -> logging.Logger:
    """(Re)bind the CLI stderr handler at the requested verbosity.

    Idempotent per process: the previously configured handler is
    replaced, never stacked, so repeated ``main()`` calls (the test
    suite drives the CLI in-process) emit each diagnostic once, to the
    stream that is ``sys.stderr`` *now*.
    """
    logger = get_logger()
    logger.setLevel(level_for(verbosity))
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler: Any = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(_LevelFormatter())
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    return logger
