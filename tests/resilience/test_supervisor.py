"""Tests for the supervised pool: crashes, retries, quarantine, cancel.

The chaos layer drives every failure mode deterministically: tests
*search* for a seed whose draws produce the scenario they need (fault
on attempt 1, clean on attempt 2, ...), so nothing here depends on
timing or luck.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ResilienceError, RunInterrupted
from repro.resilience import (
    RetryPolicy,
    SupervisedPool,
    chaos_draw,
    retry_serial,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def square(x: int) -> int:
    return x * x


def slow_if_negative(x: int) -> int:
    if x < 0:
        time.sleep(60.0)
    return x * x


def unpicklable(_x: int):
    return lambda: None  # lambdas cannot cross the result pipe


def seed_where(site: str, key: str, fault_attempts: tuple[int, ...],
               clean_attempts: tuple[int, ...], p: float) -> int:
    """Find a chaos seed whose draws fault/clear exactly as requested."""
    for seed in range(500):
        if all(chaos_draw(seed, site, key, a) < p for a in fault_attempts) \
                and all(
                    chaos_draw(seed, site, key, a) >= p
                    for a in clean_attempts
                ):
            return seed
    raise AssertionError("no seed found — widen the search")


def drain(pool: SupervisedPool, items) -> list:
    out = []
    for batch in pool.run(items):
        out.extend(batch)
    return out


class TestHappyPath:
    def test_all_units_complete(self):
        out = drain(
            SupervisedPool(square, 3), [(f"k{i}", i) for i in range(10)]
        )
        assert sorted(o.key for o in out) == sorted(f"k{i}" for i in range(10))
        assert all(o.status == "completed" and o.attempts == 1 for o in out)
        assert {o.key: o.value for o in out} == {
            f"k{i}": i * i for i in range(10)
        }

    def test_empty_items_yield_nothing(self):
        assert drain(SupervisedPool(square, 2), []) == []

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ResilienceError, match="duplicate work keys"):
            drain(SupervisedPool(square, 2), [("k", 1), ("k", 2)])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ResilienceError, match="n_workers"):
            SupervisedPool(square, 0)


class TestCrashRecovery:
    def test_killed_worker_respawns_and_work_retries(self, monkeypatch):
        # Kill key k1's first attempt; its retry draws clean.  The
        # sibling keys get seeds that draw clean on every attempt.
        seed = seed_where("kill", "k1", (1,), (2,), 0.9)
        keys = ["k1"] + [
            f"c{i}" for i in range(40)
            if all(
                chaos_draw(seed, "kill", f"c{i}", a) >= 0.9
                for a in (1, 2, 3)
            )
        ][:3]
        monkeypatch.setenv("REPRO_CHAOS", f"kill:0.9,seed:{seed}")
        out = drain(
            SupervisedPool(square, 2),
            [(key, n) for n, key in enumerate(keys)],
        )
        assert {o.key: o.value for o in out} == {
            key: n * n for n, key in enumerate(keys)
        }
        k1 = next(o for o in out if o.key == "k1")
        assert k1.status == "completed"
        assert k1.attempts >= 2
        assert k1.history[0]["outcome"] == "crash"
        assert "died holding the task" in k1.history[0]["error"]

    def test_transient_exception_retries_then_succeeds(self, monkeypatch):
        seed = seed_where("raise", "k0", (1,), (2,), 0.5)
        monkeypatch.setenv("REPRO_CHAOS", f"raise:0.5,seed:{seed}")
        out = drain(SupervisedPool(square, 2), [("k0", 3)])
        (o,) = out
        assert (o.status, o.value) == ("completed", 9)
        assert o.attempts >= 2
        assert "ChaosError" in o.history[0]["error"]
        assert "traceback" in o.history[0]

    def test_poison_work_quarantined_after_max_attempts(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise:1.0")
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        out = drain(SupervisedPool(square, 2, policy=policy),
                    [("a", 1), ("b", 2)])
        assert all(o.quarantined for o in out)
        assert all(o.attempts == 2 and len(o.history) == 2 for o in out)
        assert all(o.value is None for o in out)

    def test_certain_kill_quarantines_without_hanging(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill:1.0")
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        out = drain(SupervisedPool(square, 2, policy=policy), [("a", 1)])
        (o,) = out
        assert o.quarantined
        assert [e["outcome"] for e in o.history] == ["crash", "crash"]

    def test_unpicklable_result_is_a_fault_not_a_hang(self):
        policy = RetryPolicy(max_attempts=1)
        out = drain(SupervisedPool(unpicklable, 1, policy=policy),
                    [("a", 1)])
        (o,) = out
        assert o.quarantined
        assert o.history[0]["outcome"] == "error"

    def test_timeout_kills_and_quarantines(self):
        policy = RetryPolicy(
            max_attempts=2, timeout_s=0.4, backoff_base_s=0.0
        )
        pool = SupervisedPool(slow_if_negative, 2, policy=policy)
        out = drain(pool, [("slow", -1), ("fast", 3)])
        by_key = {o.key: o for o in out}
        assert by_key["fast"].value == 9
        slow = by_key["slow"]
        assert slow.quarantined
        assert all(e["outcome"] == "timeout" for e in slow.history)
        assert "timed out after" in slow.history[0]["error"]


class TestCancellation:
    def test_injected_interrupt_after_completed_units(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "interrupt:2")
        absorbed = []
        with pytest.raises(RunInterrupted, match="injected interrupt"):
            for batch in SupervisedPool(square, 2).run(
                [(f"k{i}", i) for i in range(8)]
            ):
                absorbed.extend(batch)
        # Completed work was yielded (persistable) before the raise.
        assert len(absorbed) >= 2
        assert all(o.status == "completed" for o in absorbed)


class TestRetrySerial:
    def test_clean_run(self):
        o = retry_serial(square, "k", 7)
        assert (o.status, o.value, o.attempts) == ("completed", 49, 1)

    def test_retries_then_succeeds(self, monkeypatch):
        seed = seed_where("raise", "k", (1,), (2,), 0.5)
        monkeypatch.setenv("REPRO_CHAOS", f"raise:0.5,seed:{seed}")
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        o = retry_serial(square, "k", 7, policy=policy)
        assert (o.status, o.value, o.attempts) == ("completed", 49, 2)

    def test_quarantines_poison_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise:1.0")
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        o = retry_serial(square, "k", 7, policy=policy)
        assert o.quarantined and o.attempts == 2

    def test_never_kills_the_calling_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill:1.0")
        o = retry_serial(square, "k", 7)
        assert (o.status, o.value) == ("completed", 49)

    def test_run_interrupted_propagates(self, monkeypatch):
        def interrupting(_x):
            raise RunInterrupted("stop")

        with pytest.raises(RunInterrupted):
            retry_serial(interrupting, "k", 1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=-0.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_WORK_TIMEOUT_S", "2.5")
        policy = RetryPolicy.from_env()
        assert (policy.max_attempts, policy.timeout_s) == (5, 2.5)
        # Explicit overrides beat the environment; timeout 0 disables.
        assert RetryPolicy.from_env(max_attempts=2).max_attempts == 2
        monkeypatch.setenv("REPRO_WORK_TIMEOUT_S", "0")
        assert RetryPolicy.from_env().timeout_s is None

    def test_backoff_deterministic_bounded_growing(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5,
            jitter=0.25,
        )
        assert policy.backoff_s("k", 1) == 0.0
        b2 = policy.backoff_s("k", 2)
        b3 = policy.backoff_s("k", 3)
        assert b2 == policy.backoff_s("k", 2)  # deterministic jitter
        assert 0.1 <= b2 <= 0.1 * 1.25
        assert 0.2 <= b3 <= 0.2 * 1.25
        # The cap bounds the un-jittered delay however high attempts go.
        assert policy.backoff_s("k", 10) <= 0.5 * 1.25
