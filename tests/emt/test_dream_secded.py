"""Tests for the DREAM + SEC/DED multi-error extension.

The composition must inherit both parents' guarantees: any single fault
anywhere is corrected (from SEC/DED) and any number of faults confined
to the DREAM-protected MSB run is corrected even when SEC/DED gives up.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import sign_run_length
from repro.emt import (
    DecodeStats,
    DreamEMT,
    DreamSecDedEMT,
    NoProtection,
    SecDedEMT,
    make_emt,
)
from repro.errors import EMTError

WORD16 = st.integers(min_value=0, max_value=0xFFFF)


@pytest.fixture(scope="module")
def emt():
    return DreamSecDedEMT()


class TestGeometry:
    def test_extra_bits_are_the_sum(self, emt):
        assert emt.stored_bits == 22
        assert emt.side_bits == 5
        assert emt.extra_bits == 11  # 6 (ECC) + 5 (DREAM)

    def test_registry(self):
        assert isinstance(make_emt("dream_secded"), DreamSecDedEMT)


class TestClean:
    @given(pattern=WORD16)
    def test_roundtrip(self, pattern):
        emt = DreamSecDedEMT()
        stored, side = emt.encode(np.array([pattern]))
        assert int(emt.decode(stored, side)[0]) == pattern

    def test_requires_side(self, emt):
        stored, _ = emt.encode(np.array([0]))
        with pytest.raises(EMTError):
            emt.decode(stored, None)


class TestInheritedGuarantees:
    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=21))
    def test_single_fault_anywhere_corrected(self, pattern, position):
        """From SEC/DED: includes LSB faults DREAM alone would pass."""
        emt = DreamSecDedEMT()
        stored, side = emt.encode(np.array([pattern]))
        decoded = emt.decode(stored ^ (1 << position), side)
        assert int(decoded[0]) == pattern

    @given(pattern=WORD16, corruption=WORD16)
    def test_masked_multi_fault_corrected(self, pattern, corruption):
        """From DREAM: any damage under the run+1 mask is repaired,
        even multi-bit patterns SEC/DED only detects."""
        emt = DreamSecDedEMT()
        stored, side = emt.encode(np.array([pattern]))
        run = int(sign_run_length(np.array([pattern]), 16)[0])
        protected = min(run + 1, 16)
        region = ((1 << protected) - 1) << (16 - protected)
        corrupted = stored ^ (corruption & region)
        decoded = emt.decode(corrupted, side)
        assert int(decoded[0]) == pattern

    def test_double_fault_one_masked_one_not(self, emt):
        """A masked MSB fault plus an LSB fault: the DREAM-first patch
        removes the MSB fault, leaving a *single* error for SEC/DED —
        full correction, where SEC/DED alone only detects."""
        value = 0x0012  # run of 11 zeros: bits 5..15 masked, 4 boundary
        stored, side = emt.encode(np.array([value]))
        corrupted = stored ^ (1 << 15) ^ (1 << 0)
        decoded = int(emt.decode(corrupted, side)[0])
        assert decoded == value
        plain = SecDedEMT()
        plain_stored, _ = plain.encode(np.array([value]))
        plain_out = int(
            plain.decode(plain_stored ^ (1 << 15) ^ (1 << 0), None)[0]
        )
        assert plain_out != value  # the parent alone cannot fix this

    def test_stats_report_repairs(self, emt):
        payload = np.array([0x0005, 0x0006])
        stored, side = emt.encode(payload)
        stats = DecodeStats()
        emt.decode(stored ^ (0b11 << 13), side, stats)  # masked double
        assert stats.words == 2
        assert stats.corrected == 2
        # The DREAM-first patch removed both faults before the syndrome
        # was formed: ECC never saw an uncorrectable word.
        assert stats.detected_uncorrectable == 0

    def test_stats_flag_unmasked_double(self, emt):
        """Two faults below the mask do reach ECC as a double error."""
        value = 0x4321  # sign run of 1: bits 15..14 protected only
        stored, side = emt.encode(np.array([value]))
        stats = DecodeStats()
        emt.decode(stored ^ 0b110, side, stats)
        assert stats.detected_uncorrectable == 1


class TestScalarReference:
    @given(pattern=WORD16,
           corruption=st.integers(min_value=0, max_value=(1 << 22) - 1))
    def test_matches_vectorised(self, pattern, corruption):
        emt = DreamSecDedEMT()
        stored, side = emt.encode(np.array([pattern]))
        corrupted = int(stored[0]) ^ corruption
        vec = int(emt.decode(np.array([corrupted]), side)[0])
        ref = emt.decode_word(corrupted, int(side[0]))
        assert vec == ref


class TestBeatsBothParentsAtHighBer:
    def test_monte_carlo_dominance(self):
        """At 0.50 V-class BER the composition must beat both parents
        on mean SNR over shared fault maps (ECG-like payloads)."""
        from repro.mem import MemoryFabric, MemoryGeometry, sample_fault_map
        from repro.signals import load_record, snr_db

        geometry = MemoryGeometry(n_words=4096, word_bits=16, n_banks=16)
        samples = load_record("100", duration_s=8.0).samples[:4000]
        emts = [DreamEMT(), SecDedEMT(), DreamSecDedEMT(), NoProtection()]
        totals = {e.name: [] for e in emts}
        for seed in range(6):
            rng = np.random.default_rng(seed)
            shared = sample_fault_map(4096, 22, 1.2e-2, rng)
            for emt in emts:
                fabric = MemoryFabric(
                    emt,
                    fault_map=shared.restricted_to(emt.stored_bits),
                    geometry=geometry.with_word_bits(emt.stored_bits),
                )
                out = fabric.roundtrip("x", samples)
                totals[emt.name].append(snr_db(samples, out))
        means = {name: float(np.mean(v)) for name, v in totals.items()}
        assert means["dream_secded"] > means["dream"]
        assert means["dream_secded"] > means["secded"]
        assert means["dream"] > means["none"]
