"""Tests for population analytics (repro.cohort.analytics)."""

from __future__ import annotations

import pytest

from repro.cohort import (
    median_survival_days,
    population_frontier,
    quality_bands,
    survival_curve,
)
from repro.errors import CohortError


def rows(lifetimes, worst=None):
    worst = worst if worst is not None else [90.0] * len(lifetimes)
    return [
        {
            "status": "ok",
            "lifetime_days": life,
            "worst_snr_db": quality,
        }
        for life, quality in zip(lifetimes, worst)
    ]


class TestSurvivalCurve:
    def test_monotone_step_down(self):
        curve = survival_curve(rows([1.0, 2.0, 3.0, 4.0]), n_points=9)
        fractions = [fraction for _, fraction in curve]
        assert fractions[0] == 1.0
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] == pytest.approx(0.25)  # one patient at max

    def test_explicit_times(self):
        curve = survival_curve(
            rows([1.0, 3.0]), times_days=[0.0, 2.0, 5.0]
        )
        assert curve == [(0.0, 1.0), (2.0, 0.5), (5.0, 0.0)]

    def test_failed_rows_excluded(self):
        mixed = rows([2.0]) + [{"status": "failed", "error": "boom"}]
        assert survival_curve(mixed, times_days=[1.0]) == [(1.0, 1.0)]

    def test_empty_inputs_rejected(self):
        with pytest.raises(CohortError, match="no successful"):
            survival_curve([])
        with pytest.raises(CohortError, match="at least one time"):
            survival_curve(rows([1.0]), times_days=[])

    def test_median(self):
        assert median_survival_days(rows([1.0, 2.0, 9.0])) == 2.0


class TestQualityBands:
    def test_percentiles(self):
        bands = quality_bands(
            rows([1.0] * 5, worst=[10.0, 20.0, 30.0, 40.0, 50.0]),
            percentiles=(50.0,),
        )
        assert bands == {50.0: 30.0}

    def test_other_metric(self):
        data = [
            {"status": "ok", "mean_snr_db": 60.0},
            {"status": "ok", "mean_snr_db": 80.0},
        ]
        bands = quality_bands(data, metric="mean_snr_db", percentiles=(50.0,))
        assert bands == {50.0: 70.0}

    def test_unknown_metric(self):
        with pytest.raises(CohortError, match="no metric"):
            quality_bands(rows([1.0]), metric="nope")


class TestPopulationFrontier:
    def summaries(self):
        return [
            {"policy": "a", "lifetime_p5_days": 3.0, "quality_p10_db": 40.0},
            {"policy": "b", "lifetime_p5_days": 2.0, "quality_p10_db": 60.0},
            # dominated by both a and b:
            {"policy": "c", "lifetime_p5_days": 1.0, "quality_p10_db": 30.0},
        ]

    def test_dominated_configs_dropped(self):
        frontier = population_frontier(self.summaries())
        assert [s["policy"] for s in frontier] == ["a", "b"]

    def test_single_summary(self):
        frontier = population_frontier(self.summaries()[:1])
        assert [s["policy"] for s in frontier] == ["a"]

    def test_missing_keys_ignored(self):
        summaries = self.summaries() + [{"policy": "failed-fleet"}]
        assert len(population_frontier(summaries)) == 2
