"""Physiological and environmental noise models for ECG traces.

The paper's motivation for tolerating LSB errors is that real acquisitions
are already "from noisy analog sources" (Section III).  The record catalog
therefore adds calibrated amounts of the three classic ECG contaminants:

* baseline wander — respiration / electrode drift below ~0.5 Hz,
* mains interference — 50/60 Hz sinusoid with slow amplitude modulation,
* EMG noise — band-limited Gaussian noise from muscle activity.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError

__all__ = [
    "baseline_wander",
    "mains_interference",
    "emg_noise",
    "compose_noise",
]


def _check(n_samples: int, fs_hz: float) -> None:
    if n_samples <= 0:
        raise SignalError(f"n_samples must be positive, got {n_samples}")
    if fs_hz <= 0:
        raise SignalError(f"sampling rate must be positive, got {fs_hz}")


def baseline_wander(
    n_samples: int,
    fs_hz: float,
    amplitude_mv: float,
    rng: np.random.Generator,
    max_freq_hz: float = 0.5,
    n_components: int = 6,
) -> np.ndarray:
    """Sum of random low-frequency sinusoids below ``max_freq_hz``."""
    _check(n_samples, fs_hz)
    t = np.arange(n_samples) / fs_hz
    wander = np.zeros(n_samples)
    for _ in range(n_components):
        freq = rng.uniform(0.05, max_freq_hz)
        phase = rng.uniform(0, 2 * np.pi)
        gain = rng.uniform(0.3, 1.0)
        wander += gain * np.sin(2 * np.pi * freq * t + phase)
    peak = np.max(np.abs(wander))
    if peak > 0:
        wander *= amplitude_mv / peak
    return wander


def mains_interference(
    n_samples: int,
    fs_hz: float,
    amplitude_mv: float,
    rng: np.random.Generator,
    mains_hz: float = 50.0,
) -> np.ndarray:
    """Mains-coupled sinusoid with slow random amplitude modulation."""
    _check(n_samples, fs_hz)
    t = np.arange(n_samples) / fs_hz
    phase = rng.uniform(0, 2 * np.pi)
    # Slow (0.2 Hz) modulation models varying coupling as the subject moves.
    modulation = 1.0 + 0.3 * np.sin(2 * np.pi * 0.2 * t + rng.uniform(0, 2 * np.pi))
    return amplitude_mv * modulation * np.sin(2 * np.pi * mains_hz * t + phase)


def emg_noise(
    n_samples: int,
    fs_hz: float,
    rms_mv: float,
    rng: np.random.Generator,
    smoothing: int = 3,
) -> np.ndarray:
    """Band-limited Gaussian noise modelling muscle activity.

    White Gaussian noise is lightly smoothed with a ``smoothing``-tap
    moving average to concentrate power below Nyquist/2, then rescaled to
    the requested RMS.
    """
    _check(n_samples, fs_hz)
    if smoothing < 1:
        raise SignalError(f"smoothing must be >= 1, got {smoothing}")
    white = rng.standard_normal(n_samples + smoothing - 1)
    kernel = np.ones(smoothing) / smoothing
    shaped = np.convolve(white, kernel, mode="valid")
    rms = float(np.sqrt(np.mean(shaped**2)))
    if rms > 0:
        shaped *= rms_mv / rms
    return shaped


def compose_noise(
    n_samples: int,
    fs_hz: float,
    rng: np.random.Generator,
    wander_mv: float = 0.0,
    mains_mv: float = 0.0,
    emg_rms_mv: float = 0.0,
    mains_hz: float = 50.0,
) -> np.ndarray:
    """Sum of the three contaminant models with the given amplitudes."""
    _check(n_samples, fs_hz)
    total = np.zeros(n_samples)
    if wander_mv > 0:
        total += baseline_wander(n_samples, fs_hz, wander_mv, rng)
    if mains_mv > 0:
        total += mains_interference(n_samples, fs_hz, mains_mv, rng, mains_hz)
    if emg_rms_mv > 0:
        total += emg_noise(n_samples, fs_hz, emg_rms_mv, rng)
    return total
