"""Real-daemon-process tests: SIGKILL recovery and graceful drain.

These spawn ``repro serve`` as an actual subprocess — the only way to
honestly test that a SIGKILLed daemon loses no completed work and that
a fresh daemon resumes the journal into bit-identical stores.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import ServiceError
from repro.service import JobQueue, ServiceClient, campaign_job_payload

from test_daemon import canon


def burst_spec(index: int) -> CampaignSpec:
    """Small, distinct, fast campaigns — a burst of unique jobs."""
    return CampaignSpec(
        name=f"burst-{index:02d}",
        kind="energy",
        axes={"emt": ("none", "dream"), "voltage": (0.9,)},
        fixed={"workload": {
            "n_reads": 10_000 + index, "n_writes": 10_000,
            "duration_s": 1e-3,
        }},
    )


def start_daemon(paths, workers=2, shards=2) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--root", str(paths["root"]),
            "--workers", str(workers),
            "--shards", str(shards),
            "--store-dir", str(paths["store"]),
            "--trace-dir", str(paths["trace"]),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(root=paths["root"], timeout_s=5.0)
    deadline = time.monotonic() + 60.0
    while True:
        try:
            client.ping()
            return proc
        except ServiceError:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited during startup (rc {proc.returncode})"
                )
            if time.monotonic() > deadline:
                proc.kill()
                raise AssertionError("daemon never became reachable")
            time.sleep(0.1)


def submit_burst(client, paths, n_jobs):
    job_ids = []
    for index in range(n_jobs):
        spec = burst_spec(index)
        payload = campaign_job_payload(
            spec, spec.expand(), spec.name, str(paths["store"]),
        )
        job, created = client.submit_campaign(payload)
        assert created
        job_ids.append(job.job_id)
    return job_ids


def wait_all_terminal(queue, job_ids, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while True:
        jobs = queue.load()
        if all(
            job_id in jobs and jobs[job_id].terminal for job_id in job_ids
        ):
            return jobs
        if time.monotonic() > deadline:
            states = {
                job_id: jobs.get(job_id) and jobs[job_id].status
                for job_id in job_ids
            }
            raise AssertionError(f"jobs never finished: {states}")
        time.sleep(0.1)


class TestSigkillRecovery:
    def test_kill_midburst_loses_no_completed_work(
        self, service_paths, tmp_path
    ):
        n_jobs = 8
        queue = JobQueue(service_paths["root"])
        daemon = start_daemon(service_paths, workers=2)
        try:
            client = ServiceClient(root=service_paths["root"])
            job_ids = submit_burst(client, service_paths, n_jobs)

            # Let some jobs finish, then SIGKILL mid-burst.
            deadline = time.monotonic() + 120.0
            while True:
                jobs = queue.load()
                done = [j for j in job_ids if jobs[j].status == "done"]
                if len(done) >= 2:
                    break
                assert time.monotonic() < deadline, "burst never started"
                time.sleep(0.05)
        finally:
            daemon.kill()
            daemon.wait()

        # The journal survived the kill: parsable, no lost submissions.
        jobs = queue.load()
        assert set(job_ids) <= set(jobs)
        done_before = {
            job_id for job_id in job_ids if jobs[job_id].status == "done"
        }
        assert len(done_before) >= 2

        # A fresh daemon recovers the journal and finishes the burst.
        daemon = start_daemon(service_paths, workers=2)
        try:
            jobs = wait_all_terminal(queue, job_ids)
            assert all(jobs[j].status == "done" for j in job_ids)
            # Completed work stayed completed.
            assert all(jobs[j].status == "done" for j in done_before)
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)

        # Every store is bit-identical to an inline run of its spec.
        for index in (0, n_jobs - 1):
            spec = burst_spec(index)
            inline = run_campaign(
                spec,
                store=ResultStore.for_campaign(
                    spec.name, root=tmp_path / "inline"
                ),
                n_workers=1,
            )
            service_store = ResultStore.for_campaign(
                spec.name, root=service_paths["store"]
            )
            assert canon(list(service_store.load().values())) == canon(
                inline.records
            )

        # Results sharded as configured.
        shard_dir = service_paths["store"] / "burst-00.shards"
        assert len(list(shard_dir.glob("shard-*.jsonl"))) >= 1
        meta = json.loads(
            (shard_dir / "shards.json").read_text(encoding="utf-8")
        )
        assert meta["shards"] == 2


class TestGracefulDrain:
    def test_stop_drains_inflight_and_exits_zero(self, service_paths):
        queue = JobQueue(service_paths["root"])
        daemon = start_daemon(service_paths, workers=1)
        try:
            client = ServiceClient(root=service_paths["root"])
            job_ids = submit_burst(client, service_paths, 3)
            client.shutdown(wait=True, timeout_s=60)
        finally:
            try:
                rc = daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait()
                raise AssertionError("daemon never exited after shutdown")
        assert rc == 0

        # Drained means nothing was abandoned mid-flight: every job is
        # either finished or still untouched in the queue.
        jobs = queue.load()
        for job_id in job_ids:
            assert jobs[job_id].status in ("done", "queued"), (
                job_id, jobs[job_id].status,
            )

    def test_sigterm_requeues_inflight_for_the_next_daemon(
        self, service_paths
    ):
        queue = JobQueue(service_paths["root"])
        daemon = start_daemon(service_paths, workers=1)
        try:
            client = ServiceClient(root=service_paths["root"])
            # Big grids (hundreds of points each), so jobs stay
            # observably in flight — a burst-sized job is done before
            # the poll below can ever catch it mid-run.
            job_ids = []
            for index in range(3):
                spec = CampaignSpec(
                    name=f"slow-{index}", kind="energy",
                    axes={
                        "emt": ("none", "dream"),
                        "voltage": tuple(
                            0.5 + 0.001 * step for step in range(200)
                        ),
                    },
                    fixed={"workload": {
                        "n_reads": 10_000 + index, "n_writes": 10_000,
                        "duration_s": 1e-3,
                    }},
                )
                payload = campaign_job_payload(
                    spec, spec.expand(), spec.name,
                    str(service_paths["store"]),
                )
                job, created = client.submit_campaign(payload)
                assert created
                job_ids.append(job.job_id)
            # Wait for the fleet to claim work, then interrupt.
            deadline = time.monotonic() + 60.0
            while not any(
                record.status in ("claimed", "running")
                for record in queue.load().values()
            ):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            daemon.send_signal(signal.SIGTERM)
            rc = daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        assert rc == 130  # the repo-wide interrupted exit code

        # No job is left in an in-flight state a dead daemon owns.
        jobs = queue.load()
        for job_id in job_ids:
            assert jobs[job_id].status in ("done", "queued")
