"""The EMT interface and the unprotected baseline.

An EMT transforms ``data_bits``-wide payload words into stored words that
live in the *faulty*, voltage-scaled data memory, plus (optionally) side
information that lives in a small always-correct memory at nominal supply
(DREAM's mask memory).  Decoding reverses the transform on possibly
corrupted stored words.

Two implementations are provided for every technique:

* a **vectorised** path (``encode`` / ``decode``) over numpy arrays, used
  by the experiments (millions of words per sweep), and
* a **bit-serial reference** path (``encode_word`` / ``decode_word``)
  written as a direct transcription of the hardware description in the
  paper, used by the test-suite to cross-validate the vectorised path
  (design decision D1 in DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._bitops import bit_mask
from ..errors import EMTError

__all__ = ["DecodeStats", "EMT", "NoProtection"]


@dataclass
class DecodeStats:
    """Counters accumulated by a decoder over one ``decode`` call.

    Attributes:
        words: number of words decoded.
        corrected: words in which the decoder repaired at least one bit.
        detected_uncorrectable: words flagged as erroneous but returned
            unrepaired (e.g. SEC/DED double errors).
    """

    words: int = 0
    corrected: int = 0
    detected_uncorrectable: int = 0

    def merge(self, other: "DecodeStats") -> None:
        """Accumulate another call's counters into this one."""
        self.words += other.words
        self.corrected += other.corrected
        self.detected_uncorrectable += other.detected_uncorrectable


class EMT(ABC):
    """Abstract error-mitigation technique.

    Subclasses define the storage geometry through three quantities:

    * ``data_bits`` — payload width (16 in the paper),
    * ``stored_bits`` — width of the word written to the faulty memory
      (16 for no-protection and DREAM, 22 for SEC/DED),
    * ``side_bits`` — width of the per-word record written to the
      error-free side memory (5 for DREAM, 0 otherwise).
    """

    #: Registry label, overridden by subclasses.
    name: str = "abstract"

    #: Widest supported payload: stored patterns (and SEC/DED codewords)
    #: are held in int64 arrays, so 32-bit payloads (39-bit codewords)
    #: are the practical ceiling for the vectorised paths.
    MAX_DATA_BITS = 32

    def __init__(self, data_bits: int = 16) -> None:
        if data_bits < 2:
            raise EMTError(f"data_bits must be >= 2, got {data_bits}")
        if data_bits > self.MAX_DATA_BITS:
            raise EMTError(
                f"data_bits must be <= {self.MAX_DATA_BITS}, got {data_bits}"
            )
        self.data_bits = data_bits

    # -- geometry ---------------------------------------------------------

    @property
    @abstractmethod
    def stored_bits(self) -> int:
        """Bits per word stored in the faulty (voltage-scaled) memory."""

    @property
    def side_bits(self) -> int:
        """Bits per word stored in the error-free side memory."""
        return 0

    @property
    def extra_bits(self) -> int:
        """Total protection bits per word (Formula 2 / Section V)."""
        return (self.stored_bits - self.data_bits) + self.side_bits

    # -- vectorised paths -------------------------------------------------

    @abstractmethod
    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Encode payload bit patterns for storage.

        Args:
            payload: ``int64`` array of unsigned ``data_bits`` patterns.
            checked: the caller guarantees the patterns are in range
                (the fabric's ``to_unsigned`` output is by construction),
                skipping the validation scan.

        Returns:
            ``(stored, side)`` — the ``stored_bits`` patterns destined for
            the faulty memory, and the side-memory patterns (``None`` when
            ``side_bits == 0``).
        """

    @abstractmethod
    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        """Decode possibly corrupted stored patterns back to payloads.

        Args:
            stored: corrupted ``stored_bits`` patterns from faulty memory.
            side: side-memory patterns as produced by :meth:`encode`
                (always intact — the side memory runs at nominal supply).
            stats: optional counter object updated in place.
            checked: the caller guarantees the patterns are in range
                (faulty-SRAM cells are by construction), skipping the
                validation scan.

        Returns:
            ``int64`` array of recovered ``data_bits`` payload patterns.
        """

    # -- bit-serial reference paths ---------------------------------------

    @abstractmethod
    def encode_word(self, payload: int) -> tuple[int, int]:
        """Reference scalar encode; returns ``(stored, side)`` integers."""

    @abstractmethod
    def decode_word(self, stored: int, side: int) -> int:
        """Reference scalar decode of one possibly corrupted word."""

    # -- shared validation --------------------------------------------------

    def _check_payload(
        self, payload: np.ndarray, checked: bool = False
    ) -> np.ndarray:
        arr = np.asarray(payload, dtype=np.int64)
        if not checked:
            limit = bit_mask(self.data_bits)
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) > limit):
                raise EMTError(
                    f"payload patterns must be unsigned "
                    f"{self.data_bits}-bit values"
                )
        return arr

    def _check_stored(
        self, stored: np.ndarray, checked: bool = False
    ) -> np.ndarray:
        arr = np.asarray(stored, dtype=np.int64)
        if not checked:
            limit = bit_mask(self.stored_bits)
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) > limit):
                raise EMTError(
                    f"stored patterns must be unsigned "
                    f"{self.stored_bits}-bit values"
                )
        return arr

    def __repr__(self) -> str:
        return f"{type(self).__name__}(data_bits={self.data_bits})"


class NoProtection(EMT):
    """Raw storage with no error mitigation (Fig 4a baseline).

    Encode and decode are identities; every stuck-at fault in the data
    memory reaches the application unchecked.
    """

    name = "none"

    @property
    def stored_bits(self) -> int:
        return self.data_bits

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, None]:
        return self._check_payload(payload, checked).copy(), None

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        arr = self._check_stored(stored, checked).copy()
        if stats is not None:
            stats.words += arr.size
        return arr

    def encode_word(self, payload: int) -> tuple[int, int]:
        if not 0 <= payload <= bit_mask(self.data_bits):
            raise EMTError("payload out of range")
        return payload, 0

    def decode_word(self, stored: int, side: int) -> int:
        if not 0 <= stored <= bit_mask(self.stored_bits):
            raise EMTError("stored word out of range")
        return stored
