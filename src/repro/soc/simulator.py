"""The cycle-approximate MPSoC simulation engine.

Cores replay their access streams; each access occupies the memory for
``cycles_per_access`` cycles once granted, and cores stall on bank
conflicts (round-robin arbitration).  The engine advances cycle by cycle
— faithful to a crossbar's behaviour while remaining fast enough for the
benchmark traces (tens of thousands of accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .config import SoCConfig
from .core_model import CoreTask
from .crossbar import Crossbar

__all__ = ["SimulationReport", "SoCSimulator"]


@dataclass
class SimulationReport:
    """Outcome of one platform simulation.

    Attributes:
        cycles: total simulated cycles, including trailing busy time.
        n_accesses: memory accesses served.
        conflicts: bank conflicts observed by the crossbar.
        duration_s: wall-clock duration (cycles at the platform clock).
        per_core_stall_cycles: cycles each core spent stalled.
        per_bank_accesses: accesses served by each bank.
    """

    cycles: int
    n_accesses: int
    conflicts: int
    duration_s: float = 0.0
    per_core_stall_cycles: list[int] = field(default_factory=list)
    per_bank_accesses: list[int] = field(default_factory=list)

    @property
    def accesses_per_cycle(self) -> float:
        """Achieved memory throughput."""
        return self.n_accesses / self.cycles if self.cycles else 0.0

    def bank_utilisation(self) -> list[float]:
        """Fraction of total accesses served by each bank."""
        total = sum(self.per_bank_accesses)
        if total == 0:
            return [0.0] * len(self.per_bank_accesses)
        return [count / total for count in self.per_bank_accesses]


@dataclass
class _CoreState:
    task: CoreTask
    index: int = 0  # next access in the stream
    ready_at: int = 0  # cycle at which the core can issue again
    stall_cycles: int = 0

    def done(self) -> bool:
        return self.index >= len(self.task.accesses)


class SoCSimulator:
    """Replay per-core access streams through the banked crossbar."""

    def __init__(self, config: SoCConfig | None = None) -> None:
        self.config = config or SoCConfig()

    def run(
        self, tasks: list[CoreTask], max_cycles: int = 50_000_000
    ) -> SimulationReport:
        """Simulate until every core has drained its stream.

        Args:
            tasks: one access stream per core (at most ``n_cores``).
            max_cycles: safety bound against runaway simulations.

        Returns:
            A :class:`SimulationReport` with cycles, conflicts, stalls
            and per-bank traffic.
        """
        config = self.config
        if len(tasks) > config.n_cores:
            raise SimulationError(
                f"{len(tasks)} tasks for {config.n_cores} cores"
            )
        crossbar = Crossbar(config.geometry, max(len(tasks), 1))
        states = [_CoreState(task=t) for t in tasks]
        for state in states:
            if not state.done():
                state.ready_at = state.task.accesses[0].gap_cycles

        bank_hits = [0] * config.geometry.n_banks
        n_accesses = sum(len(t.accesses) for t in tasks)
        cycle = 0
        remaining = sum(0 if s.done() else 1 for s in states)
        while remaining and cycle < max_cycles:
            requests = {}
            for core_id, state in enumerate(states):
                if not state.done() and state.ready_at <= cycle:
                    requests[core_id] = state.task.accesses[state.index].address
            if requests:
                granted = crossbar.arbitrate(requests)
                for core_id in requests:
                    state = states[core_id]
                    if core_id in granted:
                        access = state.task.accesses[state.index]
                        bank_hits[crossbar.bank_of(access.address)] += 1
                        state.index += 1
                        busy_until = cycle + config.cycles_per_access
                        if state.done():
                            remaining -= 1
                            state.ready_at = busy_until
                        else:
                            next_gap = state.task.accesses[state.index].gap_cycles
                            state.ready_at = busy_until + next_gap
                    else:
                        state.stall_cycles += 1
                cycle += 1
            else:
                # No core ready: jump to the next readiness point.
                future = [
                    s.ready_at for s in states if not s.done()
                ]
                cycle = max(cycle + 1, min(future)) if future else cycle + 1
        if remaining:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles with work pending"
            )
        # Account the trailing busy time of the last accesses.
        end_cycle = max([cycle] + [s.ready_at for s in states])

        return SimulationReport(
            cycles=end_cycle,
            n_accesses=n_accesses,
            conflicts=crossbar.conflicts,
            duration_s=end_cycle * config.cycle_time_s,
            per_core_stall_cycles=[s.stall_cycles for s in states],
            per_bank_accesses=bank_hits,
        )
