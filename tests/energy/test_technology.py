"""Tests for the technology node model (BER table, scaling laws)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy import TECH_32NM_LP, Technology
from repro.energy.technology import PAPER_VOLTAGE_GRID
from repro.errors import EnergyModelError

VOLTAGE = st.floats(min_value=0.50, max_value=1.00)


class TestVoltageGrid:
    def test_paper_grid(self):
        assert PAPER_VOLTAGE_GRID[0] == 0.50
        assert PAPER_VOLTAGE_GRID[-1] == 0.90
        assert len(PAPER_VOLTAGE_GRID) == 9


class TestBer:
    def test_table_endpoints(self):
        assert TECH_32NM_LP.ber(0.50) == pytest.approx(1.2e-2)
        assert TECH_32NM_LP.ber(0.90) == pytest.approx(1.0e-9)

    @given(voltage=VOLTAGE)
    def test_monotone_decreasing_in_voltage(self, voltage):
        ber_low = TECH_32NM_LP.ber(max(0.50, voltage - 0.01))
        ber_here = TECH_32NM_LP.ber(voltage)
        assert ber_low >= ber_here

    def test_log_linear_interpolation(self):
        """Halfway between table points in voltage = halfway in log BER."""
        mid = TECH_32NM_LP.ber(0.525)
        expected = math.sqrt(
            TECH_32NM_LP.ber(0.50) * TECH_32NM_LP.ber(0.55)
        )
        assert mid == pytest.approx(expected, rel=1e-9)

    def test_error_free_region(self):
        """At and above 0.8 V the expected fault count in the whole
        32 kB array stays below ~0.05: the Fig 4 flat region."""
        for voltage in (0.80, 0.85, 0.90):
            expected_faults = TECH_32NM_LP.ber(voltage) * 32 * 1024 * 8
            assert expected_faults < 0.05

    def test_multi_error_region(self):
        """At 0.5 V a 22-bit codeword frequently has 2+ faults: the ECC
        collapse region of Fig 4c."""
        ber = TECH_32NM_LP.ber(0.50)
        p_double = 231 * ber**2  # C(22,2) pairs
        assert p_double * 16384 > 50

    def test_out_of_domain(self):
        with pytest.raises(EnergyModelError):
            TECH_32NM_LP.ber(0.3)
        with pytest.raises(EnergyModelError):
            TECH_32NM_LP.ber(1.2)


class TestScaling:
    def test_dynamic_is_quadratic(self):
        assert TECH_32NM_LP.dynamic_scale(0.9) == pytest.approx(1.0)
        assert TECH_32NM_LP.dynamic_scale(0.45 * 2) == pytest.approx(1.0)
        assert TECH_32NM_LP.dynamic_scale(0.6) == pytest.approx((0.6 / 0.9) ** 2)

    @given(voltage=VOLTAGE)
    def test_leakage_monotone_in_voltage(self, voltage):
        lower = TECH_32NM_LP.leakage_scale(max(0.50, voltage - 0.01))
        here = TECH_32NM_LP.leakage_scale(voltage)
        assert lower <= here + 1e-12

    def test_leakage_falls_faster_than_linear(self):
        """The exponential DIBL term: scaling 0.9 -> 0.5 V cuts leakage
        by more than the voltage ratio alone."""
        ratio = TECH_32NM_LP.leakage_scale(0.5)
        assert ratio < 0.5 / 0.9

    def test_nominal_scales_are_unity(self):
        assert TECH_32NM_LP.dynamic_scale(0.9) == pytest.approx(1.0)
        assert TECH_32NM_LP.leakage_scale(0.9) == pytest.approx(1.0)


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(EnergyModelError):
            Technology(
                name="x", v_nominal=0.4, v_min=0.5, v_max=1.0,
                temperature_k=300, v_leak=0.2,
                ber_table=((0.5, 1e-3), (0.9, 1e-9)),
            )

    def test_bad_table_order(self):
        with pytest.raises(EnergyModelError):
            Technology(
                name="x", v_nominal=0.9, v_min=0.5, v_max=1.0,
                temperature_k=300, v_leak=0.2,
                ber_table=((0.9, 1e-9), (0.5, 1e-3)),
            )

    def test_non_positive_ber(self):
        with pytest.raises(EnergyModelError):
            Technology(
                name="x", v_nominal=0.9, v_min=0.5, v_max=1.0,
                temperature_k=300, v_leak=0.2,
                ber_table=((0.5, 0.0), (0.9, 1e-9)),
            )

    def test_table_too_short(self):
        with pytest.raises(EnergyModelError):
            Technology(
                name="x", v_nominal=0.9, v_min=0.5, v_max=1.0,
                temperature_k=300, v_leak=0.2,
                ber_table=((0.5, 1e-3),),
            )
