"""Error-Mitigation Techniques (EMTs) — the paper's core contribution.

This package implements the three protection schemes the paper compares,
behind one vectorised interface (:class:`repro.emt.base.EMT`):

* :class:`~repro.emt.base.NoProtection` — raw storage (Fig 4a),
* :class:`~repro.emt.dream.DreamEMT` — the paper's Dynamic eRror
  compEnsation And Masking technique (Fig 4b, Section IV),
* :class:`~repro.emt.secded.SecDedEMT` — Hamming (22,16) ECC with Single
  Error Correction / Double Error Detection (Fig 4c),

plus two extensions used by the ablation benches:

* :class:`~repro.emt.parity.ParityEMT` — detection-only single parity,
* :class:`~repro.emt.hybrid.HybridEMT` — the voltage-triggered policy of
  Section VI-C that switches between the techniques above.
"""

from .base import EMT, DecodeStats, NoProtection
from .dream import DreamEMT
from .dream_secded import DreamSecDedEMT
from .hybrid import HybridEMT, VoltageRange
from .parity import ParityEMT
from .secded import SecDedEMT

__all__ = [
    "EMT",
    "DecodeStats",
    "NoProtection",
    "DreamEMT",
    "DreamSecDedEMT",
    "SecDedEMT",
    "ParityEMT",
    "HybridEMT",
    "VoltageRange",
]

#: Registry of the EMTs compared in the paper's Fig 4, keyed by the labels
#: used throughout the experiment drivers, plus the extensions built on
#: top (parity; the conclusion's multi-error DREAM+SEC/DED composition).
PAPER_EMTS = {
    "none": NoProtection,
    "dream": DreamEMT,
    "secded": SecDedEMT,
    "parity": ParityEMT,
    "dream_secded": DreamSecDedEMT,
}


def make_emt(name: str, data_bits: int = 16) -> EMT:
    """Instantiate one of the paper's EMTs by registry name."""
    from ..errors import EMTError

    if name not in PAPER_EMTS:
        raise EMTError(f"unknown EMT {name!r}; available: {sorted(PAPER_EMTS)}")
    return PAPER_EMTS[name](data_bits=data_bits)
