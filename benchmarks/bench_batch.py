"""Trial-batched pipeline benchmarks: the ISSUE 4 speedup evidence.

Every benchmark times the *same computation* twice — the historical
per-trial Python loop and the batched 2-D ``(n_trials, n_words)``
pipeline — asserts the results are bit-identical, and records the
speedup as a ``BENCH_*.json`` artefact through the shared harness
(``_harness.py``).  CI runs this file in fast mode and
``check_regression.py`` fails the job if any gated speedup falls more
than 30 % below the committed ``baselines.json``.

Fast-mode scale knobs (environment):

* ``REPRO_BENCH_PROBES`` — Monte-Carlo probes for the cold-calibration
  benchmark (default 16).
* ``REPRO_BENCH_SWEEP_RUNS`` — runs per point of the cold-sweep
  benchmark (default 12).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import time_call, write_bench  # noqa: E402

from repro._bitops import HAS_BITWISE_COUNT, _popcount_swar, popcount  # noqa: E402
from repro.apps.registry import make_app  # noqa: E402
from repro.emt import make_emt  # noqa: E402
from repro.exp.common import (  # noqa: E402
    ExperimentConfig,
    load_corpus,
    run_monte_carlo,
    run_monte_carlo_sequential,
)
from repro.exp.fig2 import run_fig2  # noqa: E402
from repro.mem.fabric import MemoryFabric  # noqa: E402
from repro.mem.faults import position_fault_map  # noqa: E402
from repro.runtime.simulator import BatchCalibrator  # noqa: E402


def _probes(default: int = 16) -> int:
    return int(os.environ.get("REPRO_BENCH_PROBES", default))


def _sweep_runs(default: int = 12) -> int:
    return int(os.environ.get("REPRO_BENCH_SWEEP_RUNS", default))


def test_cold_calibration_speedup():
    """Cold Fig 2-style calibration: seed implementation vs batched path.

    The seed implementation calibrated the 32 (stuck value, bit
    position) significance configurations of one application point by
    point — a fresh application instance per configuration (so the
    clean reference outputs were recomputed every time, exactly as the
    seed ``bit_position`` evaluator did) and one full pipeline pass per
    (configuration, record).  The trial-batched ``run_fig2`` fast path
    stacks all 32 configurations into a single ``(32, n_words)``
    fault-map batch, folds the window loop into the batch, and shares
    one cached application instance.  Both produce identical curves
    (the sweep is deterministic; asserted here).

    Scale: the library-default reproduction configuration (the paper's
    five records, 10 s each) — what ``run_fig2`` runs out of the box.
    """
    config = ExperimentConfig()
    corpus = load_corpus(config)  # the record cache both legs share

    def seed_path():
        per_value = {0: [], 1: []}
        for stuck_value in (0, 1):
            for position in range(16):
                # One self-contained point, as the seed evaluator ran it.
                app = make_app("dwt")
                fault_map = position_fault_map(
                    config.geometry.n_words, 16, position, stuck_value
                )
                snrs = []
                for samples in corpus.values():
                    fabric = MemoryFabric(
                        make_emt("none"),
                        fault_map=fault_map,
                        geometry=config.geometry,
                    )
                    output = app.run(samples, fabric)
                    snrs.append(
                        app.output_snr(
                            samples, output, cap_db=config.snr_cap_db
                        )
                    )
                per_value[stuck_value].append(float(np.mean(snrs)))
        return per_value

    seq_curves, seq_s = time_call(seed_path, repeat=2)
    batched, bat_s = time_call(
        lambda: run_fig2(app_names=("dwt",), config=config), repeat=2
    )
    assert batched.snr_db["dwt"] == seq_curves, "batched Fig 2 curves moved"

    n_configs = 32 * len(config.records)
    write_bench(
        "cold_calibration",
        metrics={
            "sequential_s": seq_s,
            "batched_s": bat_s,
            "speedup": seq_s / bat_s,
            "configs_per_s": n_configs / bat_s,
        },
        gate=("speedup",),
        meta={
            "app": "dwt",
            "style": "fig2 bit-significance, 32 stacked configurations",
            "records": list(config.records),
            "duration_s": config.duration_s,
        },
    )


def test_probe_calibration_speedup():
    """BatchCalibrator vs the per-probe loop on one cold quality model.

    This is the unit of work every cold ``repro mission`` / ``repro
    cohort`` / fleet worker pays per (app, segment, operating point);
    the disk cache only helps the *second* time.  The speedup here is
    bounded by Monte-Carlo map sampling, which must consume the RNG
    stream exactly as the sequential loop did (bit-identical results)
    and is therefore shared by both legs.
    """
    n_probe = _probes()
    calibrator = BatchCalibrator(n_probe=n_probe, probe_duration_s=4.0)
    args = ("dwt", "100", 1.0, "dream", 3e-3)

    sequential, seq_s = time_call(
        lambda: calibrator.calibrate_sequential(*args), repeat=2
    )
    batched, bat_s = time_call(lambda: calibrator.calibrate(*args), repeat=2)
    assert batched == sequential, "batched calibration changed the model"

    write_bench(
        "probe_calibration",
        metrics={
            "sequential_s": seq_s,
            "batched_s": bat_s,
            "speedup": seq_s / bat_s,
            "probes_per_s": n_probe / bat_s,
        },
        gate=("speedup",),
        meta={"app": "dwt", "emt": "dream", "ber": 3e-3, "n_probe": n_probe},
    )


def test_cold_sweep_speedup():
    """A cold ``repro sweep`` quality grid, batched vs run loop.

    The montecarlo evaluator behind ``repro sweep`` (and Fig 4) spends
    its time in :func:`run_monte_carlo`; this measures a fast-mode
    voltage grid — the paper's 0.90 V (error-free) down into the
    multi-error regime — exactly the per-point work a cold sweep pays.
    The sequential leg reconstructs the seed evaluator (fresh app
    instance per point, run-by-run Monte-Carlo loop); the batched leg
    is the shipped path (cached app, stacked trials and windows).  The
    grid's own BER(V) profile decides how much of each point is
    fault-map sampling — shared by both legs, since the batched draws
    must consume the RNG stream identically to stay bit-identical.
    """
    from repro.apps.registry import cached_app
    from repro.campaign.evaluators import grid_seed
    from repro.energy.technology import TECH_32NM_LP

    config = ExperimentConfig(n_runs=_sweep_runs())
    corpus = load_corpus(config)
    emts = {name: make_emt(name) for name in ("none", "dream", "secded")}
    voltages = (0.9, 0.8, 0.7, 0.6, 0.5)

    def sweep(runner, app_for_point):
        return [
            runner(
                app_for_point(),
                emts,
                TECH_32NM_LP.ber(voltage),
                config,
                corpus,
                grid_seed("dwt", voltage),
            )
            for voltage in voltages
        ]

    sequential, seq_s = time_call(
        lambda: sweep(run_monte_carlo_sequential, lambda: make_app("dwt")),
        repeat=2,
    )
    batched, bat_s = time_call(
        lambda: sweep(run_monte_carlo, lambda: cached_app("dwt")), repeat=2
    )
    for seq_point, bat_point in zip(sequential, batched):
        assert bat_point.snr_mean_db == seq_point.snr_mean_db
        assert bat_point.snr_std_db == seq_point.snr_std_db

    n_pipeline_runs = (
        len(voltages) * config.n_runs * len(emts) * len(corpus)
    )
    write_bench(
        "cold_sweep",
        metrics={
            "sequential_s": seq_s,
            "batched_s": bat_s,
            "speedup": seq_s / bat_s,
            "pipeline_runs_per_s": n_pipeline_runs / bat_s,
        },
        gate=("speedup",),
        meta={
            "app": "dwt",
            "emts": sorted(emts),
            "voltages": list(voltages),
            "n_runs": config.n_runs,
            "records": list(config.records),
        },
    )


def test_popcount_native_vs_swar():
    """Micro-benchmark: ``np.bitwise_count`` vs the SWAR fallback.

    Proves the numpy >= 2.0 fast path is worth dispatching to — and
    that both implementations agree bit-for-bit on the codec workload
    (22-bit codewords, the widest the EMTs store).
    """
    rng = np.random.default_rng(20160131)
    words = rng.integers(0, 1 << 22, size=1_000_000, dtype=np.int64)

    swar_counts, swar_s = time_call(lambda: _popcount_swar(words), repeat=3)
    fast_counts, fast_s = time_call(lambda: popcount(words), repeat=3)
    assert np.array_equal(swar_counts, fast_counts)

    metrics = {
        "swar_s": swar_s,
        "dispatch_s": fast_s,
        "words_per_s": words.size / fast_s,
        "speedup": swar_s / fast_s,
    }
    # Gate only where the native ufunc exists; on numpy < 2.0 the
    # dispatcher *is* the SWAR path and the ratio is ~1 by construction.
    gate = ("speedup",) if HAS_BITWISE_COUNT else ()
    write_bench(
        "popcount",
        metrics=metrics,
        gate=gate,
        meta={
            "n_words": int(words.size),
            "native_bitwise_count": HAS_BITWISE_COUNT,
        },
    )
