"""Adaptive mission walkthrough: when should a wearable change gears?

The paper picks one (voltage, EMT) operating point at design time.  This
example builds a custom day-in-the-life mission, lets four run-time
policies drive the operating point window by window, and shows where the
adaptive controllers land on the lifetime-vs-worst-quality plane
relative to every static choice — then runs the same comparison as a
cached, resumable ``repro.campaign`` grid.

Run:  python examples/adaptive_mission.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.analysis import pareto_frontier
from repro.energy.battery import BatteryModel
from repro.exp.report import format_mission
from repro.runtime import (
    MissionSimulator,
    MissionSpec,
    SegmentSpec,
    StaticPolicy,
    make_policy,
)

HOUR = 3600.0


def build_mission() -> MissionSpec:
    """A 12 h shift: calm monitoring, one PVC storm, one commute."""
    return MissionSpec(
        name="example-shift",
        app="morphology",
        segments=(
            SegmentSpec("calm-morning", 4 * HOUR, record="100"),
            SegmentSpec(
                "pvc-storm", 1 * HOUR, record="119",
                noise_gain=1.5, stress=0.7, ber_multiplier=20.0,
            ),
            SegmentSpec("calm-midday", 4 * HOUR, record="103", stress=0.1),
            SegmentSpec(
                "commute", 1 * HOUR, record="100",
                noise_gain=2.0, stress=0.8, ber_multiplier=30.0,
            ),
            SegmentSpec("calm-evening", 2 * HOUR, record="100"),
        ),
        voltages=(0.65, 0.70, 0.80),
        emts=("secded",),
        battery=BatteryModel(capacity_mah=0.25),  # thin-film micro-cell
    )


def main() -> None:
    mission = build_mission()
    simulator = MissionSimulator(mission)
    print(f"mission {mission.name!r}: {mission.total_duration_s / HOUR:.0f} h, "
          f"{mission.n_windows} windows; ladder:")
    for point in simulator.ladder:
        print(f"  {point.index}: {point.label:13s} "
              f"{point.energy_per_window_pj / 1e6:6.1f} uJ/window")

    # -- direct simulation: every static rung plus the adaptive policies --
    policies = [
        StaticPolicy(index=i) for i in range(len(simulator.ladder))
    ] + [make_policy("quality"), make_policy("soc"), make_policy("hysteresis")]
    results = [simulator.run(policy) for policy in policies]
    print()
    print(format_mission(mission.name, results))

    print("\nThe hysteresis controller rides the cheap rung through calm")
    print("segments and jumps on the stress hint before a single window is")
    print("corrupted: static-safe quality at near-static-cheap power.")

    # -- the same exploration as a cached campaign grid -------------------
    spec = CampaignSpec(
        name="example-mission-grid",
        kind="mission",
        axes={
            "policy": (
                {"name": "static", "params": {"emt": "secded", "voltage": 0.70}},
                "quality", "soc", "hysteresis",
            ),
        },
        fixed={
            "mission": mission.to_dict(),  # full spec travels as JSON
            "duration_scale": 0.1,
            "n_probe": 2,
            "probe_duration_s": 3.0,
        },
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / f"{spec.name}.jsonl")
        campaign = run_campaign(spec, store=store, n_workers=2)
        again = run_campaign(spec, store=store)  # resumes: executes nothing
        print(f"\ncampaign: {campaign.n_executed} executed, then "
              f"{again.n_cached} cached on resume")
        frontier = pareto_frontier(
            campaign.ok_records(),
            x_key="lifetime_days", y_key="worst_snr_db",
            minimize_x=False, maximize_y=True,
        )
        print("lifetime/worst-quality Pareto frontier (scaled mission):")
        for record in frontier:
            policy = record["coords"]["policy"]
            label = policy if isinstance(policy, str) else (
                f"static:{policy['params']['emt']}"
                f"@{policy['params']['voltage']:.2f}"
            )
            result = record["result"]
            print(f"  {label:22s} life {result['lifetime_days']:5.2f} d  "
                  f"worst {result['worst_snr_db']:6.1f} dB")


if __name__ == "__main__":
    main()
