"""ASCII renderers: print the paper's tables and figure series.

Every experiment driver has a matching ``format_*`` function producing
the rows/series the paper reports, so the benchmark harness can print
paper-comparable output without any plotting dependency.
"""

from __future__ import annotations

from ..errors import ExperimentError
from .energy_table import EnergyAnalysis
from .fig2 import Fig2Result
from .fig4 import Fig4Result
from .overheads import OverheadRow
from .tradeoff import TradeoffResult

__all__ = [
    "format_fig2",
    "format_fig4",
    "format_energy_analysis",
    "format_tradeoff",
    "format_paper_example",
    "format_overheads",
    "format_frontier",
    "format_operating_points",
    "format_mission",
    "format_fleet",
    "format_survival",
]


def _table(header: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line(header), separator] + [line(r) for r in rows])


def format_fig2(result: Fig2Result) -> str:
    """Fig 2 as one table per stuck value: SNR(dB) x bit position."""
    blocks = []
    for stuck_value in (1, 0):
        header = ["bit"] + sorted(result.snr_db)
        rows = []
        for position in result.positions:
            row = [str(position)]
            for app in sorted(result.snr_db):
                row.append(f"{result.snr_db[app][stuck_value][position]:7.1f}")
            rows.append(row)
        blocks.append(
            f"Fig 2 — SNR (dB) vs bit position, stuck-at-{stuck_value}\n"
            + _table(header, rows)
        )
    return "\n\n".join(blocks)


def format_fig4(result: Fig4Result, emt_name: str) -> str:
    """One panel of Fig 4 (an EMT): SNR(dB) x voltage, per application."""
    apps = sorted(result.points)
    if not apps:
        raise ExperimentError("empty Fig 4 result")
    header = ["V"] + apps
    rows = []
    for voltage in result.voltages:
        row = [f"{voltage:.2f}"]
        for app in apps:
            row.append(
                f"{result.points[app][voltage].snr_mean_db[emt_name]:7.1f}"
            )
        rows.append(row)
    panel = {"none": "a (No protection)", "dream": "b (DREAM)",
             "secded": "c (ECC SEC/DED)"}.get(emt_name, emt_name)
    return f"Fig 4.{panel} — SNR (dB) vs supply voltage\n" + _table(header, rows)


def format_energy_analysis(analysis: EnergyAnalysis) -> str:
    """Section VI-B: overhead per voltage plus the headline ratios."""
    emts = [name for name in analysis.overhead if name != "none"]
    header = ["V"] + [f"{name} ovh%" for name in emts]
    rows = []
    for voltage in analysis.voltages:
        row = [f"{voltage:.2f}"]
        for name in emts:
            row.append(f"{analysis.overhead[name][voltage] * 100:6.1f}")
        rows.append(row)
    lines = ["Section VI-B — energy overhead vs no protection",
             _table(header, rows), ""]
    for name in emts:
        lines.append(
            f"mean {name} overhead: {analysis.mean_overhead(name) * 100:.1f}%"
            + (" (paper: ~34%)" if name == "dream" else "")
            + (" (paper: ~55%)" if name == "secded" else "")
        )
    if "dream" in emts and "secded" in emts:
        lines.append(
            "overhead reduction DREAM vs ECC: "
            f"{analysis.overhead_reduction_points() * 100:.1f} points "
            "(paper: ~21)"
        )
        lines.append(
            f"DREAM energy saving vs ECC: "
            f"{analysis.dream_saving_vs_ecc() * 100:.1f}%"
        )
        lines.append(
            f"encoder area ratio ECC/DREAM: {analysis.encoder_area_ratio:.2f} "
            "(paper: 1.28)"
        )
        lines.append(
            f"decoder area ratio ECC/DREAM: {analysis.decoder_area_ratio:.2f} "
            "(paper: 2.20)"
        )
    return "\n".join(lines)


def format_tradeoff(result: TradeoffResult) -> str:
    """Section VI-C: per-EMT safe voltages, savings and the policy."""
    header = ["EMT", "V_min safe", "saving vs 0.9V none"]
    rows = [
        [p.emt_name, f"{p.v_min_safe:.2f}", f"{p.saving_vs_nominal * 100:6.1f}%"]
        for p in result.operating_points
    ]
    lines = [
        f"Section VI-C — {result.app_name} @ -{result.tolerance_db:.1f} dB "
        f"tolerance (ref {result.reference_snr_db:.1f} dB)",
        _table(header, rows),
        "(paper: none@0.85 12.7%, DREAM@0.65 30.6%, ECC@0.55 39.5%)",
        "",
        "hybrid policy:",
    ]
    for entry in result.policy:
        saving = (
            f"  save {entry.saving_pct:5.1f}%" if entry.saving_pct is not None else ""
        )
        lines.append(
            f"  [{entry.v_min:.2f}; {entry.v_max:.2f}] V -> "
            f"{entry.emt_name}{saving}"
        )
    return "\n".join(lines)


def format_paper_example(points) -> str:
    """Savings at the paper's illustrative VI-C operating points."""
    from .tradeoff import PAPER_EXAMPLE_POINTS

    paper = {name: pct for name, _v, pct in PAPER_EXAMPLE_POINTS}
    header = ["EMT", "V", "measured saving", "paper saving"]
    rows = [
        [
            p.emt_name,
            f"{p.v_min_safe:.2f}",
            f"{p.saving_vs_nominal * 100:6.1f}%",
            f"{paper.get(p.emt_name, float('nan')):6.1f}%",
        ]
        for p in points
    ]
    return (
        "Section VI-C — savings at the paper's example operating points\n"
        + _table(header, rows)
    )


def format_frontier(app_name: str, rows: list[dict]) -> str:
    """A ``repro sweep`` Pareto frontier: one joined row per line.

    ``rows`` are :func:`repro.campaign.analysis.quality_energy_rows`
    dicts that survived the frontier extraction.
    """
    header = ["emt", "V", "SNR dB", "energy pJ"]
    body = [
        [
            row["emt"],
            f"{row['voltage']:.2f}",
            f"{row['snr_db']:7.1f}",
            f"{row['energy_pj']:11.1f}",
        ]
        for row in rows
    ]
    return (
        f"[{app_name}] Pareto frontier (minimise energy, maximise SNR)\n"
        + _table(header, body)
    )


def format_operating_points(
    app_name: str, points, tolerance_db: float
) -> str:
    """A ``repro sweep`` trade-off extraction (Section VI-C form).

    ``points`` are :class:`repro.campaign.analysis.OperatingPoint`
    objects (or anything with the same fields).
    """
    lines = [
        f"[{app_name}] operating points at -{tolerance_db:.1f} dB tolerance:"
    ]
    for point in points:
        lines.append(
            f"  {point.emt_name:>8s} down to {point.v_min_safe:.2f} V "
            f"-> save {point.saving_vs_nominal * 100:5.1f}%"
        )
    return "\n".join(lines)


def format_mission(mission_name: str, results) -> str:
    """A ``repro mission`` policy comparison: one row per policy.

    ``results`` are :class:`repro.runtime.MissionResult` objects (or
    anything with the same fields), typically one per policy over the
    same scenario.
    """
    header = [
        "policy", "lifetime", "survives", "mean dB", "worst dB",
        "p5 dB", "switches", "violations", "power",
    ]
    body = [
        [
            r.policy_name,
            f"{r.lifetime_days:7.2f} d",
            "yes" if r.survived else "NO",
            f"{r.mean_snr_db:6.1f}",
            f"{r.worst_snr_db:6.1f}",
            f"{r.p5_snr_db:6.1f}",
            str(r.n_switches),
            str(r.n_violations),
            f"{r.average_power_uw:5.2f} uW",
        ]
        for r in results
    ]
    return (
        f"[{mission_name}] adaptive-runtime mission — "
        "lifetime vs quality per policy\n" + _table(header, body)
    )


def format_overheads(rows: list[OverheadRow]) -> str:
    """Formula 2 / Section V: extra bits per word."""
    header = ["EMT", "data bits", "extra bits", "in faulty mem",
              "in safe mem", "overhead"]
    body = [
        [
            r.emt_name,
            str(r.data_bits),
            str(r.extra_bits),
            str(r.faulty_bits),
            str(r.safe_bits),
            f"{r.overhead_fraction * 100:5.1f}%",
        ]
        for r in rows
    ]
    return (
        "Section V — protection bits per word "
        "(paper: DREAM 5, ECC 6 for 16-bit words)\n" + _table(header, body)
    )


def format_fleet(cohort_name: str, summaries) -> str:
    """A ``repro cohort`` policy comparison: one row per fleet summary.

    ``summaries`` are :meth:`repro.cohort.FleetResult.summary` dicts
    (population tail statistics), typically one per policy over the
    same cohort.
    """
    header = [
        "policy", "survive", "p5 life", "p50 life", "p10 worst",
        "p50 worst", "mean dB", "viol/1k", "power",
    ]
    body = []
    for s in summaries:
        if "survival_fraction" not in s:
            body.append(
                [s.get("policy", "?"), "-", "-", "-", "-", "-", "-", "-",
                 f"({s.get('n_failed', '?')} failed)"]
            )
            continue
        body.append(
            [
                str(s["policy"]),
                f"{s['survival_fraction'] * 100:5.1f}%",
                f"{s['lifetime_p5_days']:6.2f} d",
                f"{s['lifetime_p50_days']:6.2f} d",
                f"{s['quality_p10_db']:6.1f}",
                f"{s['quality_p50_db']:6.1f}",
                f"{s['mean_snr_db']:6.1f}",
                f"{s['violations_per_1k_windows']:6.1f}",
                f"{s['average_power_uw']:5.2f} uW",
            ]
        )
    return (
        f"[{cohort_name}] population fleet — tail statistics per policy\n"
        + _table(header, body)
    )


def format_survival(policy_name: str, curve, width: int = 40) -> str:
    """Render a battery-survival curve as an ASCII step plot.

    ``curve`` is the ``(t_days, fraction_alive)`` sequence from
    :func:`repro.cohort.analytics.survival_curve`.
    """
    lines = [f"battery survival — {policy_name}"]
    for t_days, alive in curve:
        bar = "#" * round(alive * width)
        lines.append(f"  {t_days:7.2f} d |{bar:<{width}s}| {alive * 100:5.1f}%")
    return "\n".join(lines)
