"""Extension bench — the conclusion's multi-error EMT at deep scaling.

The paper closes with: "For voltages <0.55 V, EMTs for multiple errors
correction must be used to guarantee a reliable medical output."  This
bench evaluates the implemented composition (DREAM-first masking +
Hamming SEC/DED, ``repro.emt.DreamSecDedEMT``) against both parents at
the deep end of the sweep, quality and energy together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_app
from repro.emt import make_emt
from repro.energy import EnergySystemModel, TECH_32NM_LP
from repro.energy.accounting import Workload
from repro.exp.common import ExperimentConfig, load_corpus, run_monte_carlo

EMT_NAMES = ("none", "dream", "secded", "dream_secded")


def test_multi_error_emt_at_deep_scaling(benchmark, report_sink, bench_config):
    app = make_app("dwt")
    config = ExperimentConfig(
        records=bench_config.records,
        duration_s=bench_config.duration_s,
        n_runs=max(4, bench_config.n_runs // 2),
    )
    corpus = load_corpus(config)
    emts = {name: make_emt(name) for name in EMT_NAMES}
    workload = Workload(n_reads=100_000, n_writes=100_000, duration_s=3e-3)

    def sweep():
        rows = []
        for voltage in (0.60, 0.55, 0.50):
            ber = TECH_32NM_LP.ber(voltage)
            point = run_monte_carlo(
                app, emts, ber, config, corpus, grid_seed=int(voltage * 1000)
            )
            baseline = EnergySystemModel(emts["none"]).evaluate(
                voltage, workload
            )
            overheads = {
                name: EnergySystemModel(emts[name])
                .evaluate(voltage, workload)
                .overhead_vs(baseline)
                for name in EMT_NAMES
            }
            rows.append((voltage, point, overheads))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Extension — multi-error EMT (DREAM+SEC/DED) below 0.60 V, DWT:",
        "   V   " + "".join(f"{name:>16s}" for name in EMT_NAMES),
    ]
    for voltage, point, overheads in rows:
        lines.append(
            f"  {voltage:.2f} "
            + "".join(f"{point.snr_mean_db[n]:13.1f} dB" for n in EMT_NAMES)
        )
        lines.append(
            "  ovh%  "
            + "".join(f"{overheads[n] * 100:15.1f}%" for n in EMT_NAMES)
        )
    report_sink.add("extension_multi_error_emt", "\n".join(lines))

    # The composition must dominate both parents on quality at 0.50 V.
    deep = rows[-1][1]
    assert deep.snr_mean_db["dream_secded"] > deep.snr_mean_db["dream"]
    assert deep.snr_mean_db["dream_secded"] > deep.snr_mean_db["secded"]
    # ... at an energy overhead that is the sum of its parts.
    deep_overheads = rows[-1][2]
    assert deep_overheads["dream_secded"] > deep_overheads["secded"]
    assert deep_overheads["dream_secded"] < 1.10  # still ~2x, not runaway
