"""Deterministic fault injection, configured by ``REPRO_CHAOS``.

The spec is a comma-separated list of clauses::

    kill:P          SIGKILL the worker before evaluating (probability P)
    raise:P         raise a transient ChaosError before evaluating
    delay:P:S       sleep S seconds before evaluating (probability P)
    enospc:P        fail a store append with an ENOSPC-style OSError
    interrupt:N     cancel the run after N completed units of work
    seed:N          seed of the fault schedule (default 0)

e.g. ``REPRO_CHAOS="kill:0.2,raise:0.2,seed:7"`` or
``repro --chaos "delay:0.5:0.01,enospc:0.3"``.

Every probabilistic decision is a pure function of ``(seed, site, key,
attempt)`` — no RNG state, no wall clock — so a given schedule injects
exactly the same faults on every run of the same work, and a *retry*
(attempt + 1) gets a fresh draw.  That is what makes the recovery paths
CI-provable: with ``P < 1`` a retried unit eventually draws clean, and
the run's final results are bit-identical to an undisturbed run's.

The active spec is re-read from the environment on every
:func:`active_chaos` call (memoized against the raw env value, the
:func:`~repro.cache.shared_cache` pattern), so pool workers inherit it
through their environment and tests repoint it by setting one variable.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from dataclasses import dataclass

from ..errors import ChaosError, ResilienceError, RunInterrupted

__all__ = [
    "ENV_CHAOS",
    "ChaosSpec",
    "active_chaos",
    "chaos_draw",
    "parse_chaos",
]

#: Environment variable holding the chaos spec (empty/absent: no chaos).
ENV_CHAOS = "REPRO_CHAOS"


def chaos_draw(seed: int, site: str, key: str, attempt: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one decision.

    ``site`` names the injection point (``"kill"``, ``"raise"``, ...),
    ``key`` the unit of work, ``attempt`` its attempt number — so
    distinct decisions are independent and a retry re-draws.
    """
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosSpec:
    """One parsed ``REPRO_CHAOS`` schedule; inactive when all-zero."""

    kill_p: float = 0.0
    raise_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 0.0
    enospc_p: float = 0.0
    interrupt_after: int | None = None
    seed: int = 0

    @property
    def active(self) -> bool:
        """Whether any clause can ever fire."""
        return bool(
            self.kill_p
            or self.raise_p
            or self.delay_p
            or self.enospc_p
            or self.interrupt_after is not None
        )

    def _fires(self, site: str, p: float, key: str, attempt: int) -> bool:
        return p > 0.0 and chaos_draw(self.seed, site, key, attempt) < p

    def inject_worker(
        self, key: str, attempt: int, allow_kill: bool = True
    ) -> None:
        """Run the pre-evaluation fault sites for one unit of work.

        Called by the supervised pool's worker wrapper (and, with
        ``allow_kill=False``, by the serial retry loop — killing the
        only process would not be an injected fault, it would be the
        real thing).  May sleep, raise :class:`ChaosError`, or SIGKILL
        the calling process.
        """
        if self._fires("delay", self.delay_p, key, attempt):
            time.sleep(self.delay_s)
        if self._fires("raise", self.raise_p, key, attempt):
            raise ChaosError(
                f"injected transient fault (work={key[:12]} "
                f"attempt={attempt})"
            )
        if allow_kill and self._fires("kill", self.kill_p, key, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def inject_store_write(self, key: str, attempt: int) -> None:
        """ENOSPC site: fail one store append (the caller retries)."""
        if self._fires("enospc", self.enospc_p, key, attempt):
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC (write={key[:12]} attempt={attempt})",
            )

    def check_interrupt(self, n_completed: int) -> None:
        """Owner-side interrupt site: cancel after N completed units.

        The deterministic stand-in for a mid-run SIGINT — it raises
        :class:`RunInterrupted` through exactly the code path the
        signal handler uses, after completed work has been absorbed.
        """
        if (
            self.interrupt_after is not None
            and n_completed >= self.interrupt_after
        ):
            raise RunInterrupted(
                f"injected interrupt after {n_completed} completed units"
            )


#: The no-chaos spec, shared so `active_chaos` is cheap when disabled.
_INACTIVE = ChaosSpec()

#: `active_chaos` memo: (raw env value, parsed spec).
_PARSED: tuple[str, ChaosSpec] | None = None


def parse_chaos(text: str) -> ChaosSpec:
    """Parse a ``REPRO_CHAOS`` spec string; raises on malformed specs."""
    text = text.strip()
    if not text:
        return _INACTIVE
    fields: dict[str, object] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        name = parts[0].strip()
        try:
            if name in ("kill", "raise", "enospc") and len(parts) == 2:
                p = float(parts[1])
                if not 0.0 <= p <= 1.0:
                    raise ValueError("probability outside [0, 1]")
                fields[{"raise": "raise_p"}.get(name, f"{name}_p")] = p
            elif name == "delay" and len(parts) == 3:
                p = float(parts[1])
                if not 0.0 <= p <= 1.0:
                    raise ValueError("probability outside [0, 1]")
                s = float(parts[2])
                if s < 0.0:
                    raise ValueError("delay must be >= 0")
                fields["delay_p"] = p
                fields["delay_s"] = s
            elif name == "interrupt" and len(parts) == 2:
                n = int(parts[1])
                if n < 0:
                    raise ValueError("interrupt threshold must be >= 0")
                fields["interrupt_after"] = n
            elif name == "seed" and len(parts) == 2:
                fields["seed"] = int(parts[1])
            else:
                raise ValueError("unknown clause")
        except ValueError as exc:
            raise ResilienceError(
                f"malformed chaos clause {clause!r} in spec {text!r}: {exc}"
                "\nexpected kill:P | raise:P | delay:P:S | enospc:P"
                " | interrupt:N | seed:N"
            ) from exc
    return ChaosSpec(**fields)  # type: ignore[arg-type]


def active_chaos() -> ChaosSpec:
    """The chaos schedule currently configured in the environment.

    Re-resolves ``REPRO_CHAOS`` on every call (memoized against the raw
    value), so owner and pool workers agree on the schedule and tests
    need nothing beyond setting the variable.
    """
    global _PARSED
    raw = os.environ.get(ENV_CHAOS, "")
    if not raw.strip():
        return _INACTIVE
    if _PARSED is None or _PARSED[0] != raw:
        _PARSED = (raw, parse_chaos(raw))
    return _PARSED[1]
