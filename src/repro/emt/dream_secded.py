"""DREAM + SEC/DED: the multi-error EMT the paper's conclusion calls for.

Section VI-C ends with: "For voltages <0.55 V, EMTs for multiple errors
correction must be used to guarantee a reliable medical output."  The
natural composition of the paper's two techniques provides exactly that:

* the word is stored as a Hamming (22,16) SEC/DED codeword in the faulty
  memory — correcting *any* single fault, including the LSB faults DREAM
  ignores;
* DREAM's sign/mask-ID side info is kept in the error-free mask memory
  and applied **before** syndrome decoding: the masked MSBs' true values
  are fully determined by the side info, so patching them first strictly
  *removes* errors from the codeword ECC sees.  Decoding order matters —
  running ECC first would let an odd number (>= 3) of masked faults
  alias to a single-error syndrome and miscorrect a bit *outside* the
  mask, damage the mask pass could no longer undo (found by the
  property-based test suite).  A final mask pass additionally vetoes ECC
  miscorrections landing inside the masked region.

Cost: ``6 + (1 + log2(n))`` extra bits per word (11 for 16-bit data) and
the sum of both codecs' logic — the upper bound of the design space this
paper explores, included as the extension point the conclusion sketches.
"""

from __future__ import annotations

import numpy as np

from ..errors import EMTError
from .base import EMT, DecodeStats
from .dream import DreamEMT
from .secded import SecDedEMT

__all__ = ["DreamSecDedEMT"]


class DreamSecDedEMT(EMT):
    """Composition of DREAM masking and Hamming SEC/DED.

    Example:
        >>> import numpy as np
        >>> emt = DreamSecDedEMT()
        >>> stored, side = emt.encode(np.array([0x0012]))
        >>> corrupted = stored ^ 0b11 ^ (1 << 15)   # triple fault
        >>> int(emt.decode(corrupted, side)[0]) == 0x0012  # MSBs saved
        False
        >>> int(emt.decode(stored ^ (0b11 << 12), side)[0])  # masked pair
        18
    """

    name = "dream_secded"

    def __init__(self, data_bits: int = 16) -> None:
        super().__init__(data_bits)
        self._dream = DreamEMT(data_bits=data_bits)
        self._secded = SecDedEMT(data_bits=data_bits)

    # -- geometry ---------------------------------------------------------

    @property
    def stored_bits(self) -> int:
        """The SEC/DED codeword width (22 for 16-bit payloads)."""
        return self._secded.stored_bits

    @property
    def side_bits(self) -> int:
        """DREAM's sign + mask ID in the error-free mask memory."""
        return self._dream.side_bits

    # -- vectorised paths -------------------------------------------------

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        arr = self._check_payload(payload, checked)
        codeword, _ = self._secded.encode(arr, checked=True)
        _, side = self._dream.encode(arr, checked=True)
        return codeword, side

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        if side is None:
            raise EMTError(
                "DREAM+SEC/DED decode requires mask-memory side info"
            )
        corrupted = self._check_stored(stored, checked)
        data_mask = (np.int64(1) << np.int64(self.data_bits)) - 1

        # Pass 1 — DREAM patches the masked MSBs inside the codeword,
        # eliminating those faults before the syndrome is formed.  The
        # inner inputs are masked in-range by construction, so the
        # sub-codecs skip their validation scans.
        raw_data = np.bitwise_and(corrupted, data_mask)
        patched = np.bitwise_or(
            np.bitwise_and(corrupted, ~data_mask),
            self._dream.decode(raw_data, side, checked=True),
        )

        # Pass 2 — SEC/DED handles whatever remains (LSB and check-bit
        # faults), now with a strictly smaller error count per word.
        ecc_stats = DecodeStats() if stats is not None else None
        data = self._secded.decode(patched, None, ecc_stats, checked=True)

        # Pass 3 — final mask veto: an ECC miscorrection cannot stand
        # inside the region the side info pins down.
        repaired = self._dream.decode(data, side, checked=True)
        if stats is not None:
            raw_data = np.bitwise_and(
                corrupted, (np.int64(1) << np.int64(self.data_bits)) - 1
            )
            stats.words += corrupted.size
            stats.corrected += int(np.count_nonzero(repaired != raw_data))
            # Words ECC flagged uncorrectable may still carry residual
            # damage below DREAM's mask; report ECC's count (the honest
            # upper bound on possibly-damaged words).
            stats.detected_uncorrectable += ecc_stats.detected_uncorrectable
        return repaired

    # -- bit-serial reference ---------------------------------------------

    def encode_word(self, payload: int) -> tuple[int, int]:
        codeword, _ = self._secded.encode_word(payload)
        _, side = self._dream.encode_word(payload)
        return codeword, side

    def decode_word(self, stored: int, side: int) -> int:
        data_mask = (1 << self.data_bits) - 1
        patched_data = self._dream.decode_word(stored & data_mask, side)
        patched = (stored & ~data_mask) | patched_data
        data = self._secded.decode_word(patched, 0)
        return self._dream.decode_word(data, side)
