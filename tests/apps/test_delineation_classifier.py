"""Tests for wavelet delineation and the heartbeat classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import HeartbeatClassifierApp, WaveletDelineationApp
from repro.apps.base import clean_fabric
from repro.apps.delineation import NO_POINT
from repro.errors import SignalError
from repro.mem import MemoryFabric, position_fault_map
from repro.emt import NoProtection


class TestDelineation:
    def test_output_layout(self, record_100):
        app = WaveletDelineationApp(window=1024, slots_per_window=8)
        samples = record_100.samples[:1024]
        out = app.run(samples, clean_fabric())
        assert out.shape == (8 * 5,)

    def test_detects_most_true_beats(self, record_100):
        app = WaveletDelineationApp()
        annotations = app.run(record_100.samples, clean_fabric()).reshape(-1, 5)
        detected_r = annotations[annotations[:, 2] != NO_POINT, 2]
        true_r = record_100.r_samples
        matched = sum(
            1
            for r in true_r
            if detected_r.size and np.abs(detected_r - r).min() <= 18  # 50ms
        )
        assert matched >= 0.8 * len(true_r)

    def test_fiducial_ordering(self, record_100):
        """Within a beat: P < Q < R < S < T whenever all are present."""
        app = WaveletDelineationApp()
        annotations = app.run(record_100.samples, clean_fabric()).reshape(-1, 5)
        complete = annotations[(annotations != NO_POINT).all(axis=1)]
        assert complete.shape[0] > 0
        for p, q, r, s, t in complete:
            assert p < q < r < s < t

    def test_empty_slots_padded(self):
        """A flat signal yields no beats: all slots empty."""
        app = WaveletDelineationApp(window=1024, slots_per_window=8)
        out = app.run(np.zeros(1024, dtype=np.int64), clean_fabric())
        assert np.all(out == NO_POINT)

    def test_indices_are_absolute(self, record_100):
        app = WaveletDelineationApp(window=1024)
        samples = record_100.samples[:1536]
        annotations = app.run(samples, clean_fabric()).reshape(-1, 5)
        later_window = annotations[8:]
        found = later_window[later_window[:, 2] != NO_POINT, 2]
        assert found.size == 0 or int(found.min()) >= 1024

    def test_corruption_perturbs_annotations(self, record_100):
        app = WaveletDelineationApp()
        samples = record_100.samples[:2048]
        reference = app.reference_output(samples)
        fm = position_fault_map(16384, 16, 14, 1)
        fabric = MemoryFabric(NoProtection(), fault_map=fm)
        corrupted = app.run(samples, fabric)
        assert not np.array_equal(reference, corrupted)

    def test_record_too_long_for_int16_indices(self):
        app = WaveletDelineationApp()
        huge = np.zeros(40000, dtype=np.int64)
        with pytest.raises(SignalError):
            app.run(huge, clean_fabric())

    def test_validation(self):
        with pytest.raises(SignalError):
            WaveletDelineationApp(window=64)
        with pytest.raises(SignalError):
            WaveletDelineationApp(slots_per_window=0)
        with pytest.raises(SignalError):
            WaveletDelineationApp(threshold_factor=1.5)


class TestClassifier:
    def test_output_one_label_per_slot(self, record_100):
        app = HeartbeatClassifierApp()
        samples = record_100.samples[:2048]
        out = app.run(samples, clean_fabric())
        assert out.shape == (2 * 8,)
        valid = out[out != NO_POINT]
        assert valid.size > 0
        assert set(valid.tolist()) <= {0, 1, 2}

    def test_normal_record_classified_mostly_normal(self, record_100):
        app = HeartbeatClassifierApp()
        out = app.run(record_100.samples, clean_fabric())
        valid = out[out != NO_POINT]
        assert valid.size > 0
        normal_fraction = float(np.mean(valid == 0))
        assert normal_fraction > 0.6

    def test_pvc_record_flags_more_ventricular(self, record_100):
        from repro.signals.dataset import load_record

        pvc_record = load_record("119", duration_s=20.0)
        app = HeartbeatClassifierApp()
        normal_out = app.run(record_100.samples, clean_fabric())
        pvc_out = app.run(pvc_record.samples, clean_fabric())

        def v_fraction(labels):
            valid = labels[labels != NO_POINT]
            return float(np.mean(valid == 1)) if valid.size else 0.0

        assert v_fraction(pvc_out) > v_fraction(normal_out)

    def test_class_stability_metric(self, record_100):
        app = HeartbeatClassifierApp()
        samples = record_100.samples[:2048]
        out = app.run(samples, clean_fabric())
        assert app.class_stability(samples, out) == 1.0

    def test_class_stability_shape_check(self, record_100):
        app = HeartbeatClassifierApp()
        samples = record_100.samples[:2048]
        app.reference_output(samples)
        with pytest.raises(SignalError):
            app.class_stability(samples, np.zeros(3, dtype=np.int64))


class TestRegistry:
    def test_paper_apps_complete(self):
        from repro.apps import PAPER_APPS

        assert set(PAPER_APPS) == {
            "dwt",
            "matrix_filter",
            "compressed_sensing",
            "morphology",
            "delineation",
        }

    def test_make_app(self):
        from repro.apps import make_app
        from repro.errors import ExperimentError

        assert make_app("dwt").name == "dwt"
        assert make_app("classifier").name == "classifier"
        with pytest.raises(ExperimentError):
            make_app("fft")
