"""Experiment E3 — the Section VI-B energy and area analysis.

Reproduces the paper's quantified claims:

* "the system consumes approximately 55 % more energy for each voltage"
  with ECC SEC/DED versus no protection;
* "With DREAM, the overall energy overhead is only 34 %, reducing by
  21 % the overhead of ECC";
* "ECC requires 28 % of area overhead for the encoder and 120 % for the
  decoder, compared to those of DREAM".

The workload is a representative application run: the fabric's access
counters from executing an app on a record give the read/write volumes,
and the active-processing time comes from the MPSoC cycle model.

The (EMT, voltage) grid is expressed as a campaign spec
(:func:`energy_spec`) executed through
:func:`repro.campaign.run_campaign`, which also lets the trade-off
driver and the ``repro sweep`` CLI reuse (and cache) the same energy
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..campaign.evaluators import (
    measured_workload,
    technology_to_dict,
    workload_to_dict,
)
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..emt import make_emt
from ..energy.accounting import EnergySystemModel, Workload
from ..energy.technology import PAPER_VOLTAGE_GRID, TECH_32NM_LP, Technology
from ..errors import EnergyModelError, ExperimentError
from ..soc.config import SoCConfig
from .common import validate_registry_names

__all__ = [
    "EnergyAnalysis",
    "energy_analysis_from_records",
    "energy_spec",
    "measure_workload",
    "run_energy_analysis",
]


@dataclass
class EnergyAnalysis:
    """Energy overheads and area ratios across the voltage sweep."""

    voltages: list[float] = field(default_factory=list)
    #: ``total_pj[emt][voltage]`` — workload energy at each grid point.
    total_pj: dict[str, dict[float, float]] = field(default_factory=dict)
    #: ``overhead[emt][voltage]`` — fractional overhead vs no protection.
    overhead: dict[str, dict[float, float]] = field(default_factory=dict)
    #: area ratios vs DREAM's codec blocks (the paper's 1.28 / 2.20).
    encoder_area_ratio: float = 0.0
    decoder_area_ratio: float = 0.0
    workload: Workload | None = None

    def mean_overhead(self, emt_name: str) -> float:
        """Sweep-averaged overhead for one technique."""
        values = self.overhead.get(emt_name)
        if not values:
            raise ExperimentError(f"no overhead data for {emt_name!r}")
        return float(np.mean(list(values.values())))

    def dream_saving_vs_ecc(self) -> float:
        """Sweep-averaged energy saving of DREAM relative to ECC.

        The paper's abstract phrases the 21 % as overhead points (55 % to
        34 %); :meth:`overhead_reduction_points` gives that form.
        """
        dream = np.array(list(self.total_pj["dream"].values()))
        ecc = np.array(list(self.total_pj["secded"].values()))
        return float(np.mean(1.0 - dream / ecc))

    def overhead_reduction_points(self) -> float:
        """ECC overhead minus DREAM overhead, in fractional points."""
        return self.mean_overhead("secded") - self.mean_overhead("dream")


def measure_workload(
    app_name: str = "dwt",
    record: str = "100",
    duration_s: float = 10.0,
    soc: SoCConfig | None = None,
) -> Workload:
    """Derive the accounting workload from a real application run.

    Runs the application against a clean fabric, reads the access
    counters, and converts the access volume to active processing time
    with the SoC cycle model (accesses dominate the inner loops of these
    kernels, so cycles-per-access approximates the activity window).
    Delegates to :func:`repro.campaign.evaluators.measured_workload`, the
    same measurement campaign workers perform in-process.
    """
    return measured_workload(
        app_name=app_name, record=record, duration_s=duration_s, soc=soc
    )


def energy_spec(
    emt_names: tuple[str, ...],
    voltages: tuple[float, ...],
    workload: Workload,
    tech: Technology = TECH_32NM_LP,
    mask_memory_scaled: bool = True,
    name: str = "energy-analysis",
    filters: tuple = (),
) -> CampaignSpec:
    """The Section VI-B (EMT, voltage) grid as a campaign spec."""
    validate_registry_names(emt_names=emt_names)
    return CampaignSpec(
        name=name,
        kind="energy",
        axes={"emt": tuple(emt_names), "voltage": tuple(voltages)},
        fixed={
            "workload": workload_to_dict(workload),
            "tech": technology_to_dict(tech),
            "mask_memory_scaled": mask_memory_scaled,
        },
        filters=filters,
    )


def run_energy_analysis(
    emt_names: tuple[str, ...] = ("none", "dream", "secded"),
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID,
    workload: Workload | None = None,
    tech: Technology = TECH_32NM_LP,
    mask_memory_scaled: bool = True,
    n_workers: int = 1,
    store: ResultStore | None = None,
) -> EnergyAnalysis:
    """Evaluate the VI-B overhead/area comparison.

    Args:
        emt_names: techniques to compare; must include ``"none"`` (the
            baseline) and, for the area ratios, ``"dream"``/``"secded"``.
        voltages: supply grid.
        workload: memory activity; defaults to a measured DWT run.
        tech: technology node.
        mask_memory_scaled: design-decision D3 knob (see
            :mod:`repro.energy.accounting`).
        n_workers: worker processes for the campaign grid.
        store: optional campaign result store (resume/caching).
    """
    if "none" not in emt_names:
        raise ExperimentError("the baseline 'none' must be included")
    validate_registry_names(emt_names=emt_names)
    workload = workload or measure_workload()

    analysis = EnergyAnalysis(voltages=sorted(voltages), workload=workload)
    for name in emt_names:
        analysis.total_pj[name] = {}
        analysis.overhead[name] = {}
    if not voltages:
        # Degenerate grid: historically an empty sweep (area ratios
        # below are still computed), not an error.
        return _with_area_ratios(analysis, emt_names, tech, mask_memory_scaled)

    spec = energy_spec(
        emt_names, voltages, workload, tech, mask_memory_scaled
    )
    campaign = run_campaign(spec, store=store, n_workers=n_workers)
    campaign.raise_on_failure()
    return energy_analysis_from_records(
        campaign.records, emt_names, voltages, workload, tech,
        mask_memory_scaled,
    )


def energy_analysis_from_records(
    records: list[dict],
    emt_names: tuple[str, ...],
    voltages: tuple[float, ...],
    workload: Workload | None = None,
    tech: Technology = TECH_32NM_LP,
    mask_memory_scaled: bool = True,
) -> EnergyAnalysis:
    """Reassemble an :class:`EnergyAnalysis` from ``energy`` records.

    ``records`` are campaign records of an :func:`energy_spec` grid —
    live from :func:`repro.campaign.run_campaign` or reloaded from a
    result store.  The experiment API's figure reducer shares this path
    with :func:`run_energy_analysis`, so both produce identical analyses
    from the same stored points.
    """
    analysis = EnergyAnalysis(voltages=sorted(voltages), workload=workload)
    for name in emt_names:
        analysis.total_pj[name] = {}
        analysis.overhead[name] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        params = record["params"]
        analysis.total_pj[params["emt"]][params["voltage"]] = record[
            "result"
        ]["total_pj"]
    for voltage in analysis.voltages:
        try:
            baseline = analysis.total_pj["none"][voltage]
        except KeyError as exc:
            raise ExperimentError(
                f"energy records are missing the 'none' baseline at "
                f"{voltage} V"
            ) from exc
        if baseline <= 0:
            raise EnergyModelError("baseline energy must be positive")
        for name in emt_names:
            if voltage not in analysis.total_pj[name]:
                raise ExperimentError(
                    f"energy records are missing grid point "
                    f"({name!r}, {voltage})"
                )
            analysis.overhead[name][voltage] = (
                analysis.total_pj[name][voltage] / baseline - 1.0
            )
    return _with_area_ratios(analysis, emt_names, tech, mask_memory_scaled)


def _with_area_ratios(
    analysis: EnergyAnalysis,
    emt_names: tuple[str, ...],
    tech: Technology,
    mask_memory_scaled: bool,
) -> EnergyAnalysis:
    """Fill in the paper's codec-area ratios (when both EMTs are swept)."""
    if "dream" in emt_names and "secded" in emt_names:
        dream = EnergySystemModel(
            make_emt("dream"), tech=tech, mask_memory_scaled=mask_memory_scaled
        )
        ecc = EnergySystemModel(
            make_emt("secded"), tech=tech, mask_memory_scaled=mask_memory_scaled
        )
        analysis.encoder_area_ratio = (
            ecc.encoder_area_um2() / dream.encoder_area_um2()
        )
        analysis.decoder_area_ratio = (
            ecc.decoder_area_um2() / dream.decoder_area_um2()
        )
    return analysis
