"""Memory geometry and logical-to-physical address mapping.

The paper's platform: "a shared memory of 32 kB, divided into 16 banks
accessible by the cores through a crossbar" holding 16-bit data words.
:class:`MemoryGeometry` captures that organisation; :class:`AddressMap`
adds the random logical-to-physical scrambling the paper argues makes a
fresh fault map per run realistic even with *permanent* faults ("adding a
small logic to randomize the mapping between logical and physical
addresses and bit locations", Section V — design decision D5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, MemoryModelError

__all__ = ["MemoryGeometry", "AddressMap", "PAPER_GEOMETRY"]


@dataclass(frozen=True)
class MemoryGeometry:
    """Banked SRAM organisation.

    Attributes:
        n_words: addressable words in the array.
        word_bits: stored bits per word (16 raw, 22 with SEC/DED columns).
        n_banks: number of word-interleaved banks.
    """

    n_words: int
    word_bits: int
    n_banks: int = 16

    def __post_init__(self) -> None:
        if self.n_words <= 0:
            raise ConfigurationError(
                f"n_words must be positive, got {self.n_words}"
            )
        if self.word_bits <= 0:
            raise ConfigurationError(
                f"word_bits must be positive, got {self.word_bits}"
            )
        if self.n_banks <= 0 or self.n_words % self.n_banks:
            raise ConfigurationError(
                f"n_banks must divide n_words ({self.n_words}), "
                f"got {self.n_banks}"
            )

    @property
    def capacity_bits(self) -> int:
        """Total stored bits in the array."""
        return self.n_words * self.word_bits

    @property
    def words_per_bank(self) -> int:
        """Depth of each bank."""
        return self.n_words // self.n_banks

    def bank_of(self, addresses: np.ndarray) -> np.ndarray:
        """Word-interleaved bank index for each address."""
        addr = self._check_addresses(addresses)
        return addr % self.n_banks

    def row_of(self, addresses: np.ndarray) -> np.ndarray:
        """Row index within the bank for each address."""
        addr = self._check_addresses(addresses)
        return addr // self.n_banks

    def _check_addresses(self, addresses: np.ndarray) -> np.ndarray:
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.size and (int(addr.min()) < 0 or int(addr.max()) >= self.n_words):
            raise MemoryModelError(
                f"address out of range [0, {self.n_words})"
            )
        return addr

    def with_word_bits(self, word_bits: int) -> "MemoryGeometry":
        """Same organisation with a different stored-word width.

        Used when an EMT widens the word (SEC/DED columns).
        """
        return MemoryGeometry(
            n_words=self.n_words, word_bits=word_bits, n_banks=self.n_banks
        )


#: The paper's data memory: 32 kB of 16-bit words in 16 banks.
PAPER_GEOMETRY = MemoryGeometry(n_words=16384, word_bits=16, n_banks=16)


class AddressMap:
    """A (possibly scrambled) logical-to-physical word mapping.

    With ``scramble=True`` the mapping is a random permutation drawn from
    ``rng``; otherwise it is the identity.  Scrambling is what turns a
    *fixed* set of permanent defects into a fresh random fault pattern per
    run, as the paper's Section V argues.
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        rng: np.random.Generator | None = None,
        scramble: bool = True,
    ) -> None:
        self.geometry = geometry
        if scramble:
            if rng is None:
                raise ConfigurationError(
                    "scrambled AddressMap requires a random generator"
                )
            self._table = rng.permutation(geometry.n_words).astype(np.int64)
        else:
            self._table = np.arange(geometry.n_words, dtype=np.int64)

    def physical(self, logical: np.ndarray) -> np.ndarray:
        """Translate logical word addresses to physical word indices."""
        addr = np.asarray(logical, dtype=np.int64)
        if addr.size and (
            int(addr.min()) < 0 or int(addr.max()) >= self.geometry.n_words
        ):
            raise MemoryModelError(
                f"logical address out of range [0, {self.geometry.n_words})"
            )
        return self._table[addr]

    @property
    def is_identity(self) -> bool:
        """True when no scrambling is applied."""
        return bool(np.array_equal(self._table, np.arange(self.geometry.n_words)))
