"""Stuck-at fault maps for the voltage-scaled data memory.

The paper's error model (Section V): "Data corruption is caused by
permanent errors that occur at random positions and set the affected
memory bits to '1' or '0'."  A :class:`FaultMap` captures one such set of
permanent defects as two per-word bit masks — bits stuck at one and bits
stuck at zero — which makes applying the corruption to a whole buffer two
vectorised bitwise operations (design decision D1).

Two constructors cover the paper's two methodologies:

* :func:`sample_fault_map` — independent per-bit failures at a given BER,
  each stuck value drawn uniformly (Fig 4's Monte-Carlo runs);
* :func:`position_fault_map` — every word's bit ``k`` stuck at a chosen
  value (Fig 2's per-bit significance sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._bitops import bit_mask
from ..errors import MemoryModelError

__all__ = [
    "FaultMap",
    "empty_fault_map",
    "sample_fault_map",
    "position_fault_map",
]


@dataclass(frozen=True)
class FaultMap:
    """Permanent stuck-at defects of one physical memory array.

    Attributes:
        word_bits: width of each word the map covers.
        set_mask: per-word mask of bits stuck at '1'.
        clear_mask: per-word mask of bits stuck at '0'.

    A bit cannot be stuck at both values; the constructor rejects
    overlapping masks.
    """

    word_bits: int
    set_mask: np.ndarray
    clear_mask: np.ndarray

    def __post_init__(self) -> None:
        if self.word_bits < 1:
            raise MemoryModelError(
                f"word_bits must be positive, got {self.word_bits}"
            )
        set_arr = np.asarray(self.set_mask, dtype=np.int64)
        clear_arr = np.asarray(self.clear_mask, dtype=np.int64)
        if set_arr.shape != clear_arr.shape:
            raise MemoryModelError(
                f"mask shapes differ: {set_arr.shape} vs {clear_arr.shape}"
            )
        limit = bit_mask(self.word_bits)
        for name, arr in (("set_mask", set_arr), ("clear_mask", clear_arr)):
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) > limit):
                raise MemoryModelError(
                    f"{name} exceeds the {self.word_bits}-bit word width"
                )
        if np.any(np.bitwise_and(set_arr, clear_arr)):
            raise MemoryModelError(
                "a bit cannot be stuck at both '0' and '1'"
            )
        object.__setattr__(self, "set_mask", set_arr)
        object.__setattr__(self, "clear_mask", clear_arr)

    @property
    def n_words(self) -> int:
        """Number of words covered by this map."""
        return int(self.set_mask.size)

    @property
    def n_faults(self) -> int:
        """Total number of stuck bits in the array."""
        return int(
            np.bitwise_count(self.set_mask).sum()
            + np.bitwise_count(self.clear_mask).sum()
        )

    def apply(self, words: np.ndarray, indices: np.ndarray | None = None) -> np.ndarray:
        """Corrupt stored bit patterns as the defective cells would.

        Args:
            words: bit patterns being read back.
            indices: physical word indices each element maps to; when
                omitted, ``words`` must cover the full array in order.

        Returns:
            ``(words | set_mask) & ~clear_mask`` element-wise.
        """
        arr = np.asarray(words, dtype=np.int64)
        if indices is None:
            if arr.shape != self.set_mask.shape:
                raise MemoryModelError(
                    f"expected full-array shape {self.set_mask.shape}, "
                    f"got {arr.shape}"
                )
            set_mask, clear_mask = self.set_mask, self.clear_mask
        else:
            idx = np.asarray(indices, dtype=np.int64)
            if idx.shape != arr.shape:
                raise MemoryModelError(
                    f"indices shape {idx.shape} does not match words "
                    f"shape {arr.shape}"
                )
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.n_words):
                raise MemoryModelError("physical index out of range")
            set_mask = self.set_mask[idx]
            clear_mask = self.clear_mask[idx]
        return np.bitwise_and(np.bitwise_or(arr, set_mask), ~clear_mask)

    def restricted_to(self, word_bits: int) -> "FaultMap":
        """Project the map onto a narrower word (drop faults above it).

        Used when a hybrid system provisions the memory for the widest
        EMT but a narrower technique only occupies the low columns.
        """
        if word_bits > self.word_bits:
            raise MemoryModelError(
                f"cannot widen a fault map from {self.word_bits} to {word_bits} bits"
            )
        keep = bit_mask(word_bits)
        return FaultMap(
            word_bits=word_bits,
            set_mask=np.bitwise_and(self.set_mask, keep),
            clear_mask=np.bitwise_and(self.clear_mask, keep),
        )

    def restricted_to_words(self, start: int, length: int) -> "FaultMap":
        """Keep only the faults inside the word range [start, start+length).

        Used by the buffer-sensitivity analysis: combined with the
        fabric's static allocation it confines injection to one named
        buffer (e.g. "faults in the input buffer only").
        """
        if not 0 <= start <= self.n_words:
            raise MemoryModelError(
                f"range start {start} outside [0, {self.n_words}]"
            )
        if length < 0 or start + length > self.n_words:
            raise MemoryModelError(
                f"range [{start}, {start + length}) exceeds the "
                f"{self.n_words}-word array"
            )
        inside = np.zeros(self.n_words, dtype=bool)
        inside[start : start + length] = True
        return FaultMap(
            word_bits=self.word_bits,
            set_mask=np.where(inside, self.set_mask, 0),
            clear_mask=np.where(inside, self.clear_mask, 0),
        )


def empty_fault_map(n_words: int, word_bits: int) -> FaultMap:
    """A defect-free array (nominal supply voltage)."""
    if n_words < 0:
        raise MemoryModelError(f"n_words must be non-negative, got {n_words}")
    zeros = np.zeros(n_words, dtype=np.int64)
    return FaultMap(word_bits=word_bits, set_mask=zeros, clear_mask=zeros.copy())


def sample_fault_map(
    n_words: int,
    word_bits: int,
    ber: float,
    rng: np.random.Generator,
) -> FaultMap:
    """Draw one Monte-Carlo fault map at bit error rate ``ber``.

    Every bit cell fails independently with probability ``ber``; each
    failed cell is stuck at '1' or '0' with equal probability — the
    paper's Section V error model.
    """
    if not 0.0 <= ber <= 1.0:
        raise MemoryModelError(f"BER must be in [0, 1], got {ber}")
    if n_words < 0:
        raise MemoryModelError(f"n_words must be non-negative, got {n_words}")
    if ber == 0.0 or n_words == 0:
        return empty_fault_map(n_words, word_bits)

    failed = rng.random((n_words, word_bits)) < ber
    stuck_high = rng.random((n_words, word_bits)) < 0.5
    weights = (np.int64(1) << np.arange(word_bits, dtype=np.int64))[None, :]
    set_mask = np.where(failed & stuck_high, weights, 0).sum(axis=1)
    clear_mask = np.where(failed & ~stuck_high, weights, 0).sum(axis=1)
    return FaultMap(word_bits=word_bits, set_mask=set_mask, clear_mask=clear_mask)


def position_fault_map(
    n_words: int,
    word_bits: int,
    position: int,
    stuck_value: int,
) -> FaultMap:
    """Stick bit ``position`` of *every* word at ``stuck_value``.

    This is the Fig 2 methodology: "we successively set to '1' and '0'
    each bit located on the positions 0 to 15 of the 16-bits data
    buffers".
    """
    if not 0 <= position < word_bits:
        raise MemoryModelError(
            f"position must be in [0, {word_bits}), got {position}"
        )
    if stuck_value not in (0, 1):
        raise MemoryModelError(f"stuck_value must be 0 or 1, got {stuck_value}")
    mask = np.full(n_words, np.int64(1) << np.int64(position), dtype=np.int64)
    zeros = np.zeros(n_words, dtype=np.int64)
    if stuck_value == 1:
        return FaultMap(word_bits=word_bits, set_mask=mask, clear_mask=zeros)
    return FaultMap(word_bits=word_bits, set_mask=zeros, clear_mask=mask)
