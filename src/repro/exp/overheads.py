"""Experiment E5 — Formula 2 / Section V: per-word memory overheads.

The paper sizes the protection storage per data word:

* DREAM: ``1 + log2(data_size)`` bits (sign + mask ID) in the error-free
  side memory — 5 bits for 16-bit words;
* ECC SEC/DED: ``2 + log2(data_size)`` bits (Hamming + overall parity)
  in the faulty memory — 6 bits for 16-bit words.

:func:`overhead_table` evaluates both (plus any other registered EMT)
across word sizes, directly from the implemented techniques — the table
is *measured from the code*, not re-derived from the formulae, so a
regression in either implementation breaks the reproduction test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..emt import DreamEMT, NoProtection, ParityEMT, SecDedEMT
from ..emt.base import EMT
from ..errors import ExperimentError

__all__ = ["OverheadRow", "overhead_table", "formula2_dream", "formula2_secded"]


def formula2_dream(data_bits: int) -> int:
    """The paper's Formula 2: ``1 + log2(data_size)`` bits per word."""
    if data_bits < 2 or data_bits & (data_bits - 1):
        raise ExperimentError(
            f"Formula 2 needs a power-of-two word size, got {data_bits}"
        )
    return 1 + int(math.log2(data_bits))


def formula2_secded(data_bits: int) -> int:
    """Section V's ECC sizing: ``2 + log2(data_size)`` bits per word."""
    if data_bits < 2 or data_bits & (data_bits - 1):
        raise ExperimentError(
            f"SEC/DED sizing needs a power-of-two word size, got {data_bits}"
        )
    return 2 + int(math.log2(data_bits))


@dataclass(frozen=True)
class OverheadRow:
    """Protection-storage overhead of one EMT at one word size."""

    emt_name: str
    data_bits: int
    extra_bits: int
    faulty_bits: int
    safe_bits: int

    @property
    def overhead_fraction(self) -> float:
        """Extra bits as a fraction of the data word."""
        return self.extra_bits / self.data_bits


def overhead_table(
    word_sizes: tuple[int, ...] = (8, 16, 32),
    emts: tuple[type[EMT], ...] = (
        NoProtection,
        ParityEMT,
        DreamEMT,
        SecDedEMT,
    ),
) -> list[OverheadRow]:
    """Measure per-word overheads from the implemented EMTs."""
    rows = []
    for bits in word_sizes:
        for emt_cls in emts:
            emt = emt_cls(data_bits=bits)
            rows.append(
                OverheadRow(
                    emt_name=emt.name,
                    data_bits=bits,
                    extra_bits=emt.extra_bits,
                    faulty_bits=emt.stored_bits - emt.data_bits,
                    safe_bits=emt.side_bits,
                )
            )
    return rows
