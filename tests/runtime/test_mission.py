"""Tests for mission specs, scenarios and the mission simulator."""

from __future__ import annotations

import pytest

from repro.energy.battery import BatteryModel
from repro.errors import MissionError
from repro.runtime import (
    MissionSimulator,
    MissionSpec,
    SegmentSpec,
    make_policy,
    scenario_names,
    scenario_spec,
)
from repro.runtime.policy import StaticPolicy


def tiny_mission(**overrides) -> MissionSpec:
    """A two-segment mission small enough for unit tests."""
    defaults = dict(
        name="tiny",
        segments=(
            SegmentSpec("calm", 240.0, record="100"),
            SegmentSpec(
                "burst", 80.0, record="100",
                noise_gain=2.0, stress=0.8, ber_multiplier=30.0,
            ),
        ),
        app="morphology",
        window_s=8.0,
        voltages=(0.65, 0.80),
        emts=("secded",),
        battery=BatteryModel(capacity_mah=0.25),
    )
    defaults.update(overrides)
    return MissionSpec(**defaults)


def simulator(spec: MissionSpec | None = None, **kwargs) -> MissionSimulator:
    kwargs.setdefault("n_probe", 2)
    kwargs.setdefault("probe_duration_s", 2.0)
    return MissionSimulator(spec or tiny_mission(), **kwargs)


class TestSegmentSpec:
    def test_validation(self):
        with pytest.raises(MissionError, match="name"):
            SegmentSpec("", 10.0)
        with pytest.raises(MissionError, match="duration"):
            SegmentSpec("x", 0.0)
        with pytest.raises(MissionError, match="stress"):
            SegmentSpec("x", 10.0, stress=1.5)
        with pytest.raises(MissionError, match="noise gain"):
            SegmentSpec("x", 10.0, noise_gain=-1.0)
        with pytest.raises(MissionError, match="multiplier"):
            SegmentSpec("x", 10.0, ber_multiplier=-2.0)

    def test_signature_ignores_name_and_stress(self):
        a = SegmentSpec("a", 10.0, record="106", stress=0.8)
        b = SegmentSpec("b", 99.0, record="106", stress=0.1)
        assert a.signature == b.signature


class TestMissionSpec:
    def test_validation(self):
        with pytest.raises(MissionError, match="at least one segment"):
            tiny_mission(segments=())
        with pytest.raises(MissionError, match="window"):
            tiny_mission(window_s=0.0)
        with pytest.raises(MissionError, match="lattice"):
            tiny_mission(voltages=())
        with pytest.raises(MissionError, match="platform power"):
            tiny_mission(platform_power_uw=-1.0)
        with pytest.raises(MissionError, match="shorter than one window"):
            tiny_mission(window_s=1000.0)

    def test_timeline_accessors(self):
        spec = tiny_mission()
        assert spec.total_duration_s == 320.0
        assert spec.n_windows == 40
        assert spec.segment_at(0.0).name == "calm"
        assert spec.segment_at(239.9).name == "calm"
        assert spec.segment_at(240.0).name == "burst"
        assert spec.segment_at(320.0).name == "burst"
        with pytest.raises(MissionError, match="past the mission end"):
            spec.segment_at(321.0)
        with pytest.raises(MissionError, match="non-negative"):
            spec.segment_at(-1.0)

    def test_scaled_preserves_shape(self):
        spec = tiny_mission().scaled(0.5)
        assert spec.total_duration_s == 160.0
        assert [s.name for s in spec.segments] == ["calm", "burst"]
        # The battery shrinks with the timeline so the state-of-charge
        # trajectory (and any mid-mission depletion) is preserved.
        assert spec.battery.capacity_mah == pytest.approx(0.125)
        with pytest.raises(MissionError, match="scale factor"):
            tiny_mission().scaled(0.0)

    def test_dict_roundtrip(self):
        spec = tiny_mission()
        clone = MissionSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(MissionError, match="malformed"):
            MissionSpec.from_dict({"name": "x"})


class TestScenarios:
    def test_registry_ships_at_least_three(self):
        names = scenario_names()
        assert len(names) >= 3
        assert {"overnight", "active_day", "harvester"} <= set(names)

    def test_specs_build_and_are_deterministic(self):
        for name in scenario_names():
            assert scenario_spec(name) == scenario_spec(name)

    def test_unknown_scenario(self):
        with pytest.raises(MissionError, match="unknown scenario"):
            scenario_spec("mars")


class TestSimulator:
    def test_ladder_is_energy_sorted(self):
        sim = simulator()
        energies = [p.energy_per_window_pj for p in sim.ladder]
        assert energies == sorted(energies)
        assert [p.index for p in sim.ladder] == list(range(len(sim.ladder)))

    def test_validation(self):
        with pytest.raises(MissionError, match="n_probe"):
            simulator(n_probe=0)
        with pytest.raises(MissionError, match="probe duration"):
            simulator(probe_duration_s=0.0)
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="unknown application"):
            simulator(tiny_mission(app="fft"))
        with pytest.raises(MissionError, match="unknown record"):
            simulator(
                tiny_mission(
                    segments=(SegmentSpec("x", 240.0, record="999"),)
                )
            )

    def test_run_is_deterministic(self):
        sim = simulator()
        policy = make_policy("hysteresis")
        first = sim.run(policy)
        second = sim.run(make_policy("hysteresis"))
        assert first == second

    def test_static_policy_never_switches(self):
        sim = simulator()
        result = sim.run(StaticPolicy(index=0))
        assert result.n_switches == 0
        assert result.op_point_share == {sim.ladder[0].label: 1.0}
        assert result.n_processed == result.n_windows

    def test_quality_reflects_stress_at_low_rung(self):
        sim = simulator()
        low = sim.run(StaticPolicy(index=0))
        high = sim.run(StaticPolicy(index=len(sim.ladder) - 1))
        # The burst segment collapses the cheap rung but not the top one.
        assert low.worst_snr_db < 30.0
        assert high.worst_snr_db == pytest.approx(96.0)
        # ... and the top rung pays for it in projected lifetime.
        assert high.lifetime_days < low.lifetime_days
        assert high.average_power_uw > low.average_power_uw

    def test_battery_depletion_ends_mission_early(self):
        # A cell holding ~10 windows' worth of top-rung energy.
        spec = tiny_mission(
            battery=BatteryModel(capacity_mah=1.2e-4),
        )
        result = simulator(spec).run(StaticPolicy(index=1))
        assert not result.survived
        assert 0 < result.n_processed < result.n_windows
        # The node browns out at the start of the first window it cannot
        # fully fund, so only fully-powered windows are scored ...
        assert result.lifetime_days == pytest.approx(
            result.n_processed * spec.window_s / 86_400.0
        )
        # ... and the drained energy never exceeds the usable capacity.
        assert result.energy_mj * 1e-3 <= spec.battery.usable_energy_j

    def test_battery_too_small_for_one_window_raises(self):
        from repro.errors import MissionError

        spec = tiny_mission(battery=BatteryModel(capacity_mah=1.2e-7))
        with pytest.raises(MissionError, match="cannot fund a single"):
            simulator(spec).run(StaticPolicy(index=1))

    def test_projected_lifetime_matches_average_power(self):
        spec = tiny_mission()
        result = simulator(spec).run(StaticPolicy(index=0))
        assert result.survived
        expected_s = spec.battery.usable_energy_j / (
            result.average_power_uw * 1e-6
        )
        assert result.lifetime_days == pytest.approx(expected_s / 86_400.0)

    def test_platform_power_adds_to_every_window(self):
        base = simulator(tiny_mission()).run(StaticPolicy(index=0))
        loaded = simulator(
            tiny_mission(platform_power_uw=5.0)
        ).run(StaticPolicy(index=0))
        assert loaded.average_power_uw == pytest.approx(
            base.average_power_uw + 5.0
        )

    def test_trace_capture(self):
        sim = simulator(keep_trace=True)
        result = sim.run(make_policy("hysteresis"))
        assert result.trace is not None
        assert len(result.trace) == result.n_processed
        first = result.trace[0]
        assert {"window", "time_s", "segment", "op_point", "snr_db",
                "soc", "stress_hint"} <= set(first)
        assert result.to_dict().get("trace") is None  # JSON form drops it

    def test_hysteresis_beats_reactive_on_worst_quality(self):
        """The feed-forward term absorbs the burst before it corrupts a
        window; pure reactive control eats the first bad window."""
        sim = simulator()
        hysteresis = sim.run(make_policy("hysteresis"))
        reactive = sim.run(make_policy("quality"))
        assert hysteresis.worst_snr_db > reactive.worst_snr_db
        assert hysteresis.n_switches < reactive.n_switches

    def test_result_to_dict_is_json_safe(self):
        import json

        result = simulator().run(make_policy("soc"))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["policy"] == "soc"
        assert payload["n_windows"] == result.n_windows
