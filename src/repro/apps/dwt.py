"""Discrete Wavelet Transform application (paper Section II-1).

The DWT used by commercial multi-lead WBSN delineators ([8] in the paper)
is the *à-trous* (undecimated) quadratic-spline filterbank of Mallat, the
standard choice for ECG because its detail coefficients are proportional
to the signal's smoothed derivative — QRS complexes appear as
modulus-maxima pairs.  Per scale ``j``:

* low-pass:  ``h = [1, 3, 3, 1] / 8`` (unit DC gain, exact in fixed point
  as multiply-accumulate then a rounded shift by 3),
* high-pass: ``g = [2, -2]`` (first derivative, gain 2),

with ``2**(j-1) - 1`` zeros inserted between taps at scale ``j`` and
symmetric boundary extension.  The implementation is integer-exact
(shift-add arithmetic with saturation), mirroring the fixed-point
firmware of the target platform.

Memory behaviour: the input vector, every scale's approximation (ping-pong
buffers, as firmware would allocate statically) and every scale's detail
output live in the faulty data memory.  The app's output is the
concatenation ``[d1, d2, ..., dJ, aJ]``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import SignalError
from ..fixedpoint import Q15, rounded_shift_right, saturate
from ..mem.fabric import MemoryFabric
from .base import BiomedicalApp

__all__ = ["DwtApp", "atrous_lowpass", "atrous_highpass", "atrous_decompose"]


@lru_cache(maxsize=256)
def _reflected_index(n: int, offset: int) -> np.ndarray:
    """The reflected gather index for one (length, offset) pair, cached.

    The same handful of (window length, tap offset) pairs recurs for
    every window, scale, record and Monte-Carlo trial, so the index
    arithmetic is hoisted out of the hot loop.
    """
    index = np.arange(n) + offset
    # Reflect indices into [0, n) (symmetric, repeating edge style).
    index = np.abs(index)
    over = index >= n
    index[over] = 2 * (n - 1) - index[over]
    index.setflags(write=False)
    return index


def _shifted(values: np.ndarray, offset: int) -> np.ndarray:
    """``values`` shifted by ``offset`` with symmetric boundary extension.

    Shape-agnostic: the sample index is the last axis, so a trial-batched
    ``(n_trials, n)`` array shifts every trial at once.  The interior of
    the result is a plain contiguous copy; only the ``|offset|`` edge
    elements need the reflected gather — a fraction of the cost of
    gathering the whole axis (offsets are at most ``2**(scales-1)``).
    """
    n = values.shape[-1]
    if offset == 0:
        return values.copy()
    out = np.empty_like(values)
    index = _reflected_index(n, offset)
    if offset > 0:
        interior = n - min(offset, n)
        out[..., :interior] = values[..., offset : offset + interior]
        out[..., interior:] = values[..., index[interior:]]
    else:
        edge = min(-offset, n)
        out[..., edge:] = values[..., : n - edge]
        out[..., :edge] = values[..., index[:edge]]
    return out


def atrous_lowpass(values: np.ndarray, scale: int) -> np.ndarray:
    """One à-trous low-pass step ``a_j = (a_{j-1} * h_j)`` in fixed point.

    Args:
        values: approximation at the previous scale (signed raw ints).
        scale: target scale ``j >= 1``; taps are spaced ``2**(j-1)``.

    Returns:
        Saturated 16-bit approximation at scale ``j``.
    """
    if scale < 1:
        raise SignalError(f"scale must be >= 1, got {scale}")
    arr = np.asarray(values, dtype=np.int64)
    spacing = 1 << (scale - 1)
    # Zero-phase placement of [1, 3, 3, 1]: taps at -2s, -s, 0, +s
    # (matching the causal filter after group-delay compensation).
    # Factored as (outer taps) + 3 * (inner taps) — integer arithmetic,
    # so the regrouping is exact while saving one full-array multiply.
    outer = _shifted(arr, -2 * spacing) + _shifted(arr, spacing)
    inner = _shifted(arr, -spacing) + arr
    acc = outer + 3 * inner
    return saturate(rounded_shift_right(acc, 3), Q15)


def atrous_highpass(values: np.ndarray, scale: int) -> np.ndarray:
    """One à-trous high-pass step ``d_j = (a_{j-1} * g_j)`` in fixed point.

    ``g = [2, -2]`` computes a scaled first difference; the result
    saturates at the 16-bit range like the target's DSP datapath.
    """
    if scale < 1:
        raise SignalError(f"scale must be >= 1, got {scale}")
    arr = np.asarray(values, dtype=np.int64)
    spacing = 1 << (scale - 1)
    diff = 2 * (_shifted(arr, -spacing) - arr)
    return saturate(diff, Q15)


def atrous_decompose(
    samples: np.ndarray, n_scales: int
) -> tuple[list[np.ndarray], np.ndarray]:
    """Pure (memory-less) à-trous decomposition used by the delineator.

    Returns:
        ``(details, approximation)`` with ``details[j-1]`` the scale-``j``
        detail coefficients.
    """
    if n_scales < 1:
        raise SignalError(f"n_scales must be >= 1, got {n_scales}")
    approx = np.asarray(samples, dtype=np.int64)
    details = []
    for scale in range(1, n_scales + 1):
        details.append(atrous_highpass(approx, scale))
        approx = atrous_lowpass(approx, scale)
    return details, approx


class DwtApp(BiomedicalApp):
    """Multi-scale à-trous DWT over the faulty memory fabric.

    Args:
        n_scales: number of dyadic scales (the WBSN delineator uses 4).
        window: processing window in samples; the record is handled in
            windows of this size with statically allocated buffers, as
            the 32 kB platform requires.

    Example:
        >>> import numpy as np
        >>> from repro.apps import DwtApp
        >>> from repro.apps.base import clean_fabric
        >>> app = DwtApp()
        >>> out = app.run(np.zeros(64, dtype=np.int64), clean_fabric())
        >>> out.shape
        (320,)
    """

    name = "dwt"
    description = "multi-scale a-trous quadratic-spline DWT"
    #: Every step treats the sample index as the last axis, so a batched
    #: fabric streams all trials through one numpy pass per stage.
    supports_batch = True

    def __init__(self, n_scales: int = 4, window: int = 1024) -> None:
        super().__init__()
        if n_scales < 1:
            raise SignalError(f"n_scales must be >= 1, got {n_scales}")
        if window < 1 << n_scales:
            raise SignalError(
                f"window {window} too small for {n_scales} scales"
            )
        self.n_scales = n_scales
        self.window = window

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        # On a batched fabric, all complete windows (of every stream)
        # ride the pipeline as one stacked roundtrip per buffer; a
        # trailing partial window keeps the classic path.  Identical
        # values — windows are independent through the fabric.
        return self._run_in_windows(
            arr,
            self.window,
            fabric,
            lambda chunk: self._run_window(chunk, fabric),
        )

    def _run_window(
        self, chunk: np.ndarray, fabric: MemoryFabric
    ) -> np.ndarray:
        # Input buffer lives in the faulty memory.  On a batched fabric
        # the roundtrip returns (n_trials, window) and every subsequent
        # stage broadcasts across the trial axis unchanged.
        approx = fabric.roundtrip("dwt.input", chunk)
        details = []
        for scale in range(1, self.n_scales + 1):
            detail = atrous_highpass(approx, scale)
            approx = atrous_lowpass(approx, scale)
            # Detail goes to its output region; approximation ping-pongs
            # between two statically allocated scratch buffers.
            details.append(fabric.roundtrip(f"dwt.detail{scale}", detail))
            approx = fabric.roundtrip(f"dwt.approx{scale % 2}", approx)
        return np.concatenate(details + [approx], axis=-1)
