"""Tests for the compressed-sensing application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import CompressedSensingApp
from repro.apps.base import clean_fabric
from repro.apps.compressed_sensing import (
    daubechies4_basis,
    omp_reconstruct,
    sparse_binary_matrix,
)
from repro.errors import SignalError
from repro.mem import MemoryFabric, position_fault_map
from repro.emt import NoProtection


class TestSensingMatrix:
    def test_column_weights(self):
        phi = sparse_binary_matrix(64, 128, 4, seed=1)
        assert phi.shape == (64, 128)
        assert np.all(phi.sum(axis=0) == 4)
        assert set(np.unique(phi)) <= {0, 1}

    def test_deterministic(self):
        a = sparse_binary_matrix(64, 128, 4, seed=9)
        b = sparse_binary_matrix(64, 128, 4, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(SignalError):
            sparse_binary_matrix(4, 8, 5, seed=0)
        with pytest.raises(SignalError):
            sparse_binary_matrix(4, 8, 0, seed=0)


class TestWaveletBasis:
    @pytest.mark.parametrize("n", [64, 128, 256])
    def test_orthonormal(self, n):
        basis = daubechies4_basis(n, n_levels=4)
        assert np.abs(basis.T @ basis - np.eye(n)).max() < 1e-10

    def test_validation(self):
        with pytest.raises(SignalError):
            daubechies4_basis(100)  # not a power of two
        with pytest.raises(SignalError):
            daubechies4_basis(16, n_levels=5)  # too many levels

    def test_smooth_signal_is_compressible(self):
        n = 256
        basis = daubechies4_basis(n)
        t = np.linspace(0, 4 * np.pi, n)
        x = np.sin(t) + 0.5 * np.sin(3 * t)
        coeffs = basis.T @ x
        sorted_energy = np.sort(coeffs**2)[::-1]
        top32 = sorted_energy[:32].sum() / sorted_energy.sum()
        assert top32 > 0.99


class TestOmp:
    def test_recovers_exactly_sparse_signal(self, rng):
        n, m, k = 128, 64, 6
        basis = daubechies4_basis(n, n_levels=4)
        phi = sparse_binary_matrix(m, n, 4, seed=3)
        coeffs = np.zeros(n)
        support = rng.choice(n, size=k, replace=False)
        coeffs[support] = rng.normal(size=k) * 100
        x = basis @ coeffs
        y = phi.astype(float) @ x
        xhat = omp_reconstruct(phi, basis, y, max_atoms=2 * k)
        assert np.abs(xhat - x).max() < 1e-6 * np.abs(x).max()

    def test_zero_measurements_give_zero(self):
        basis = daubechies4_basis(64, n_levels=3)
        phi = sparse_binary_matrix(32, 64, 4, seed=5)
        xhat = omp_reconstruct(phi, basis, np.zeros(32), max_atoms=8)
        assert np.all(xhat == 0)


class TestCompressedSensingApp:
    def test_output_is_half_the_input(self, short_samples):
        app = CompressedSensingApp(block_size=512)
        out = app.run(short_samples, clean_fabric())
        assert out.shape == (short_samples.size // 2,)

    def test_output_fits_16_bits(self, short_samples):
        out = CompressedSensingApp().run(short_samples, clean_fabric())
        assert int(out.max()) <= 32767 and int(out.min()) >= -32768

    def test_reconstruction_quality_clean(self, record_100):
        """The error-free ceiling: dominated by compression loss, so
        well below the 16-bit cap but clearly above garbage."""
        app = CompressedSensingApp()
        samples = record_100.samples[:1024]
        out = app.run(samples, clean_fabric())
        snr = app.output_snr(samples, out)
        assert 10.0 < snr < 40.0

    def test_msb_fault_on_measurements_destroys_reconstruction(
        self, record_100
    ):
        app = CompressedSensingApp()
        samples = record_100.samples[:512]
        clean_snr = app.output_snr(
            samples, app.run(samples, clean_fabric())
        )
        fm = position_fault_map(16384, 16, 14, 0)
        fabric = MemoryFabric(NoProtection(), fault_map=fm)
        corrupted_snr = app.output_snr(
            samples, app.run(samples, fabric)
        )
        assert corrupted_snr < clean_snr - 5

    def test_lsb_fault_is_tolerated(self, record_100):
        """Section III: CS tolerates LSB-position errors."""
        app = CompressedSensingApp()
        samples = record_100.samples[:512]
        clean_snr = app.output_snr(
            samples, app.run(samples, clean_fabric())
        )
        fm = position_fault_map(16384, 16, 0, 1)
        fabric = MemoryFabric(NoProtection(), fault_map=fm)
        corrupted_snr = app.output_snr(samples, app.run(samples, fabric))
        assert corrupted_snr > clean_snr - 2

    def test_reconstruct_validates_length(self):
        app = CompressedSensingApp()
        with pytest.raises(SignalError):
            app.reconstruct(np.zeros(100))

    def test_padding_of_partial_block(self, record_100):
        app = CompressedSensingApp(block_size=512)
        samples = record_100.samples[:700]
        out = app.run(samples, clean_fabric())
        assert out.shape == (512,)  # two blocks of 256 measurements

    def test_validation(self):
        with pytest.raises(SignalError):
            CompressedSensingApp(block_size=100)
        with pytest.raises(SignalError):
            CompressedSensingApp(compression=1.5)

    def test_deterministic_given_seed(self, short_samples):
        a = CompressedSensingApp(seed=7).run(short_samples, clean_fabric())
        b = CompressedSensingApp(seed=7).run(short_samples, clean_fabric())
        assert np.array_equal(a, b)
