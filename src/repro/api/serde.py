"""Shared serialisation layer of the experiment API.

Before this module existed the repo grew one private copy of every
serialisation concern per subsystem: the campaign evaluators carried
``technology_to_dict``/``geometry_to_dict``/``workload_to_dict``, the
CLI parsed ``name:weight`` mixes and policy tokens with its own
helpers, and the canonical-JSON machinery lived inside
:mod:`repro.campaign.spec`.  They are consolidated here — evaluators,
the CLI and the :mod:`repro.api.schema` dataclasses all import from
this module, and the historical homes re-export for compatibility.

Three layers:

* **canonicalisation** — :func:`canonicalise`/:func:`canonical_json`/
  :func:`content_hash`: the hashing substrate every campaign point,
  cache entry and experiment identity is keyed by.  Moving the
  implementation here changes no byte of its output, so existing
  result-store and calibration-cache keys stay valid.
* **model serde** — frozen model objects
  (:class:`~repro.energy.technology.Technology`,
  :class:`~repro.mem.layout.MemoryGeometry`,
  :class:`~repro.energy.accounting.Workload`) to and from JSON-safe
  dicts, plus mix (``name:weight``) and policy-token parsing.
* **file IO** — :func:`load_payload`/:func:`dump_payload` read and
  write experiment payloads as TOML or JSON, dispatching on the file
  suffix.  TOML is emitted by :func:`dumps_toml` (the standard library
  parses TOML but does not write it) and is round-trip exact: a dumped
  payload reparses to the same canonical form bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from collections.abc import Mapping
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from ..energy.accounting import Workload
from ..energy.technology import TECH_32NM_LP, Technology
from ..errors import CampaignError, ExperimentSpecError
from ..mem.layout import PAPER_GEOMETRY, MemoryGeometry

__all__ = [
    "canonicalise",
    "canonical_json",
    "content_hash",
    "technology_to_dict",
    "technology_from_dict",
    "geometry_to_dict",
    "geometry_from_dict",
    "workload_to_dict",
    "workload_from_dict",
    "parse_mix",
    "format_mix",
    "policy_payload",
    "policy_label",
    "load_payload",
    "dump_payload",
    "dumps_toml",
]


# --------------------------------------------------------------------------
# Canonicalisation (the historical repro.campaign.spec machinery)
# --------------------------------------------------------------------------


def canonicalise(value: Any) -> Any:
    """Normalise a parameter value for hashing (tuples become lists).

    Numpy scalars and arrays are unwrapped to their Python equivalents:
    axes built with ``np.linspace``/``np.arange`` must hash (and store)
    identically to hand-written value tuples.
    """
    if isinstance(value, np.generic):
        return canonicalise(value.item())
    if isinstance(value, np.ndarray):
        # tolist() of a 0-d array is a bare scalar, so recurse rather
        # than iterate.
        return canonicalise(value.tolist())
    if isinstance(value, tuple):
        return [canonicalise(v) for v in value]
    if isinstance(value, list):
        return [canonicalise(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonicalise(v) for k, v in value.items()}
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, (int, float)):
        return value
    raise CampaignError(
        f"campaign parameter of type {type(value).__name__} is not "
        f"JSON-serialisable: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical JSON (sorted keys, no whitespace).

    The canonical form is the hashing substrate: two payloads that differ
    only in key order or tuple-vs-list container produce identical text.
    """
    return json.dumps(
        canonicalise(payload), sort_keys=True, separators=(",", ":")
    )


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# --------------------------------------------------------------------------
# Model objects <-> JSON-safe dicts
# --------------------------------------------------------------------------


def technology_to_dict(tech: Technology) -> dict[str, Any]:
    """Serialise a :class:`Technology` for a campaign's fixed parameters."""
    payload = asdict(tech)
    payload["ber_table"] = [list(row) for row in tech.ber_table]
    return payload


def technology_from_dict(payload: dict[str, Any] | None) -> Technology:
    """Rebuild a :class:`Technology` (default node when ``None``)."""
    if payload is None:
        return TECH_32NM_LP
    data = dict(payload)
    data["ber_table"] = tuple(tuple(row) for row in data["ber_table"])
    return Technology(**data)


def geometry_to_dict(geometry: MemoryGeometry) -> dict[str, Any]:
    """Serialise a :class:`MemoryGeometry` axis/parameter value."""
    return asdict(geometry)


def geometry_from_dict(payload: dict[str, Any] | None) -> MemoryGeometry:
    """Rebuild a :class:`MemoryGeometry` (paper geometry when ``None``)."""
    if payload is None:
        return PAPER_GEOMETRY
    return MemoryGeometry(**payload)


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """Serialise a :class:`Workload` for the ``energy`` evaluator."""
    return asdict(workload)


def workload_from_dict(payload: dict[str, Any]) -> Workload:
    """Rebuild a :class:`Workload` from its dict form."""
    return Workload(**payload)


# --------------------------------------------------------------------------
# Mixes and policy tokens (the historical CLI helpers)
# --------------------------------------------------------------------------


def parse_mix(raw: str, value_type=str) -> tuple:
    """Parse a ``name:weight,name:weight`` mix argument.

    Returns ``((value, weight), ...)`` pairs with ``value`` coerced by
    ``value_type`` and the weight parsed as a float — the shape the
    :class:`~repro.cohort.population.PatientModel` mixes take.
    """
    pairs = []
    for token in (item.strip() for item in raw.split(",") if item.strip()):
        name, sep, weight = token.partition(":")
        if not sep:
            raise ExperimentSpecError(
                f"mix entries are 'name:weight', got {token!r}"
            )
        try:
            pairs.append((value_type(name.strip()), float(weight)))
        except ValueError as exc:
            raise ExperimentSpecError(
                f"bad mix entry {token!r}: {exc}"
            ) from exc
    return tuple(pairs)


def format_mix(mix: tuple) -> str:
    """Render a ``((value, weight), ...)`` mix back to CLI token form."""
    return ",".join(f"{value}:{weight:g}" for value, weight in mix)


def policy_payload(token: str) -> str | dict:
    """The JSON-safe campaign form of a CLI policy token.

    ``"hysteresis"`` stays a bare registry name; ``"static:dream@0.65"``
    becomes the ``{"name", "params"}`` dict the ``mission``/``cohort``
    evaluators and :func:`repro.runtime.policy_from_dict` accept.
    """
    name, _, arg = token.partition(":")
    if not arg:
        return name.strip()
    emt_name, sep, voltage = arg.partition("@")
    if not sep:
        raise ExperimentSpecError(
            f"policy operating point must be 'emt@voltage', got {token!r}"
        )
    try:
        parsed = float(voltage)
    except ValueError as exc:
        raise ExperimentSpecError(
            f"bad voltage in policy token {token!r}: {exc}"
        ) from exc
    return {
        "name": name.strip(),
        "params": {"emt": emt_name.strip(), "voltage": parsed},
    }


def policy_label(policy: Any) -> str:
    """Stable report label of a JSON-safe policy payload."""
    if isinstance(policy, str):
        return policy
    name = policy.get("name", "?")
    params = policy.get("params") or {}
    if not params:
        return str(name)
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{name}({inner})"


# --------------------------------------------------------------------------
# Experiment-file IO (TOML and JSON)
# --------------------------------------------------------------------------

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _toml_value(value: Any, where: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a subset of TOML basic-string escaping.
        return json.dumps(value)
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(v, where) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{_toml_key(k)} = {_toml_value(v, f'{where}.{k}')}"
            for k, v in value.items()
        )
        return "{" + inner + "}"
    raise ExperimentSpecError(
        f"TOML cannot encode {type(value).__name__} at {where}: {value!r}"
    )


def _emit_table(lines: list[str], table: dict, prefix: tuple[str, ...]) -> None:
    subtables = []
    for key, value in table.items():
        where = ".".join((*prefix, key))
        if isinstance(value, dict):
            subtables.append((key, value))
        elif value is None:
            raise ExperimentSpecError(
                f"TOML cannot encode null at {where}; omit the key instead"
            )
        else:
            lines.append(f"{_toml_key(key)} = {_toml_value(value, where)}")
    for key, value in subtables:
        lines.append("")
        lines.append("[" + ".".join(_toml_key(p) for p in (*prefix, key)) + "]")
        _emit_table(lines, value, (*prefix, key))


def dumps_toml(payload: Mapping[str, Any]) -> str:
    """Render a JSON-safe payload as TOML text.

    Nested mappings become ``[dotted.tables]``, mappings inside arrays
    become inline tables, and floats keep their distinction from ints —
    ``tomllib`` reparses the output to the exact canonical form of the
    input (round-trip pinned by the API test suite).
    """
    payload = canonicalise(payload)
    if not isinstance(payload, dict):
        raise ExperimentSpecError(
            f"a TOML document must be a mapping, got {type(payload).__name__}"
        )
    lines: list[str] = []
    _emit_table(lines, payload, ())
    if lines and not lines[0]:
        lines = lines[1:]  # payload opened with a table: drop the blank
    return "\n".join(lines) + "\n"


def load_payload(path: Path | str) -> dict[str, Any]:
    """Read an experiment payload from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ExperimentSpecError(
            f"{path}: unsupported experiment file suffix {suffix!r} "
            "(use .toml or .json)"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ExperimentSpecError(f"cannot read {path}: {exc}") from exc
    if suffix == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentSpecError(
                f"{path} is not valid JSON: {exc}"
            ) from exc
    else:
        import tomllib

        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ExperimentSpecError(
                f"{path} is not valid TOML: {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise ExperimentSpecError(
            f"{path} must contain a mapping at the top level, "
            f"got {type(payload).__name__}"
        )
    return payload


def dump_payload(payload: Mapping[str, Any], path: Path | str) -> None:
    """Write a payload to ``path`` as TOML or JSON (by suffix)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        text = json.dumps(canonicalise(payload), indent=2, sort_keys=True)
        text += "\n"
    elif suffix == ".toml":
        text = dumps_toml(payload)
    else:
        raise ExperimentSpecError(
            f"{path}: unsupported experiment file suffix {suffix!r} "
            "(use .toml or .json)"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
