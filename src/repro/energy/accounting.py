"""Whole-memory-system energy accounting (paper Section VI-B).

The quantity the paper compares across EMTs is the energy of the complete
protected memory system for a given workload:

* the **data memory** — the 32 kB array, widened to 22-bit words when the
  SEC/DED check bits live alongside the data, operated at the scaled
  supply voltage;
* the **mask memory** (DREAM only) — a 5-bit-per-word side array that is
  always error-free (Section IV-A).  *Modelling note (design decision
  D3)*: the paper keeps this array "at a high supply voltage level", yet
  its reported overheads — +34 % at nominal *and* the 30.6 % saving at
  0.65 V in Section VI-C — are only mutually consistent if the mask
  memory's energy contribution tracks the data supply (e.g. it is built
  from up-sized cells that remain reliable in the scaled domain, trading
  area for energy).  The default therefore scales the mask memory with
  the data voltage; ``mask_memory_scaled=False`` gives the conservative
  nominal-supply variant, in which DREAM's advantage erodes below
  ~0.7 V.  EXPERIMENTS.md quantifies both;
* the **encoder/decoder logic** — exercised on every write/read
  respectively.

:class:`EnergySystemModel` composes the CACTI-lite array models and the
gate-equivalent logic models into a per-workload
:class:`EnergyBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emt.base import EMT
from ..errors import EnergyModelError
from ..mem.layout import PAPER_GEOMETRY, MemoryGeometry
from .logic_model import LogicCalibration, LOGIC_CALIB_32NM_LP, logic_blocks_for
from .sram_model import CALIB_32NM_LP, SramArrayModel, SramCalibration
from .technology import TECH_32NM_LP, Technology

__all__ = [
    "Workload",
    "EnergyBreakdown",
    "EnergySystemModel",
    "workload_from_fabric",
]


def workload_from_fabric(fabric, duration_s: float) -> "Workload":
    """Build a :class:`Workload` from a fabric's access counters.

    Args:
        fabric: a :class:`repro.mem.fabric.MemoryFabric` after one or
            more application runs.
        duration_s: the active-processing span (e.g. from a
            :class:`repro.soc.SimulationReport`'s ``duration_s``).
    """
    return Workload(
        n_reads=fabric.stats.data_reads,
        n_writes=fabric.stats.data_writes,
        duration_s=duration_s,
    )


@dataclass(frozen=True)
class Workload:
    """Memory activity over one accounting window.

    Attributes:
        n_reads: word reads from the data memory.
        n_writes: word writes to the data memory.
        duration_s: wall-clock span of the window (for leakage).
    """

    n_reads: int
    n_writes: int
    duration_s: float

    def __post_init__(self) -> None:
        if self.n_reads < 0 or self.n_writes < 0:
            raise EnergyModelError("access counts must be non-negative")
        if self.duration_s < 0:
            raise EnergyModelError("duration must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one workload on one protected memory system, in pJ."""

    data_dynamic_pj: float
    data_leakage_pj: float
    side_dynamic_pj: float
    side_leakage_pj: float
    logic_dynamic_pj: float
    logic_leakage_pj: float

    @property
    def total_pj(self) -> float:
        """Sum of all components."""
        return (
            self.data_dynamic_pj
            + self.data_leakage_pj
            + self.side_dynamic_pj
            + self.side_leakage_pj
            + self.logic_dynamic_pj
            + self.logic_leakage_pj
        )

    def overhead_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional energy overhead relative to ``baseline``.

        ``0.55`` means "+55 % energy", the form the paper quotes.
        """
        if baseline.total_pj <= 0:
            raise EnergyModelError("baseline energy must be positive")
        return self.total_pj / baseline.total_pj - 1.0


class EnergySystemModel:
    """Energy model of one EMT-protected memory system.

    Args:
        emt: the technique whose geometry (stored/side bits) and logic
            blocks are being modelled.
        tech: technology node.
        geometry: data-memory organisation *before* widening (the paper's
            32 kB array of 16-bit words by default).
        mask_memory_scaled: D3 knob — when True (default, see module
            docstring), DREAM's mask memory energy tracks the data
            supply; when False it stays at nominal supply.
        sram_calibration / logic_calibration: node constants.

    Example:
        >>> from repro.emt import DreamEMT, NoProtection
        >>> wl = Workload(n_reads=10000, n_writes=10000, duration_s=1e-3)
        >>> base = EnergySystemModel(NoProtection()).evaluate(0.9, wl)
        >>> dream = EnergySystemModel(DreamEMT()).evaluate(0.9, wl)
        >>> 0.2 < dream.overhead_vs(base) < 0.5
        True
    """

    def __init__(
        self,
        emt: EMT,
        tech: Technology = TECH_32NM_LP,
        geometry: MemoryGeometry = PAPER_GEOMETRY,
        mask_memory_scaled: bool = True,
        sram_calibration: SramCalibration = CALIB_32NM_LP,
        logic_calibration: LogicCalibration = LOGIC_CALIB_32NM_LP,
    ) -> None:
        self.emt = emt
        self.tech = tech
        self.mask_memory_scaled = mask_memory_scaled
        self.data_array = SramArrayModel(
            geometry.with_word_bits(emt.stored_bits), tech, sram_calibration
        )
        self.side_array = (
            SramArrayModel(
                geometry.with_word_bits(emt.side_bits), tech, sram_calibration
            )
            if emt.side_bits
            else None
        )
        self.encoder, self.decoder = logic_blocks_for(
            emt.name, tech, logic_calibration
        )

    def evaluate(self, voltage: float, workload: Workload) -> EnergyBreakdown:
        """Energy of ``workload`` with the data memory at ``voltage``."""
        self.tech.check_voltage(voltage)
        seconds_to_pj = 1e6  # uW * s -> pJ

        data_dyn = (
            workload.n_reads * self.data_array.read_energy_pj(voltage)
            + workload.n_writes * self.data_array.write_energy_pj(voltage)
        )
        data_leak = (
            self.data_array.leakage_power_uw(voltage)
            * workload.duration_s
            * seconds_to_pj
        )

        side_dyn = side_leak = 0.0
        if self.side_array is not None:
            side_voltage = voltage if self.mask_memory_scaled else self.tech.v_nominal
            side_dyn = (
                workload.n_reads * self.side_array.read_energy_pj(side_voltage)
                + workload.n_writes * self.side_array.write_energy_pj(side_voltage)
            )
            side_leak = (
                self.side_array.leakage_power_uw(side_voltage)
                * workload.duration_s
                * seconds_to_pj
            )

        logic_dyn = (
            workload.n_writes * self.encoder.energy_per_op_pj(voltage)
            + workload.n_reads * self.decoder.energy_per_op_pj(voltage)
        )
        logic_leak = (
            (
                self.encoder.leakage_power_uw(voltage)
                + self.decoder.leakage_power_uw(voltage)
            )
            * workload.duration_s
            * seconds_to_pj
        )

        return EnergyBreakdown(
            data_dynamic_pj=data_dyn,
            data_leakage_pj=data_leak,
            side_dynamic_pj=side_dyn,
            side_leakage_pj=side_leak,
            logic_dynamic_pj=logic_dyn,
            logic_leakage_pj=logic_leak,
        )

    # -- area (Section VI-B's encoder/decoder comparison) --------------------

    def encoder_area_um2(self) -> float:
        """Synthesised encoder area."""
        return self.encoder.area_um2()

    def decoder_area_um2(self) -> float:
        """Synthesised decoder area."""
        return self.decoder.area_um2()

    def memory_area_mm2(self) -> float:
        """Total SRAM area (data plus side arrays)."""
        total = self.data_array.area_mm2()
        if self.side_array is not None:
            total += self.side_array.area_mm2()
        return total
