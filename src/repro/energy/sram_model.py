"""CACTI-lite: an analytical banked-SRAM energy, leakage and area model.

CACTI 6.5 (the paper's memory modelling tool) is a large cache-modelling
program; this module re-implements the slice of it the paper needs — read
and write energy per access, leakage power and silicon area of a small
banked scratchpad SRAM — as a transparent analytical model:

* each bank is organised as a near-square sub-array of ``rows x columns``
  cells (column count balanced against the word width),
* a read charges one wordline (scaling with the number of columns), the
  accessed bitline pairs (scaling with the number of rows, one pair per
  word bit) and the sense amplifiers, plus a decoder term scaling with
  the address width,
* a write costs the same wordline/decode terms with full-swing bitline
  drive (a configurable multiplier of the read bitline energy),
* leakage scales with the total cell count and the node's
  temperature-dependent per-cell leakage,
* area is cell area times capacity plus a fixed periphery fraction.

All energies are reported at the array's *operating voltage* using the
technology's scaling laws; the calibration constants below were chosen so
the absolute numbers land in the published range for a 32 nm low-power
32 kB scratchpad (single-digit pJ per access) — the experiments only
consume ratios, which EXPERIMENTS.md compares against the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import EnergyModelError
from ..mem.layout import MemoryGeometry
from .technology import Technology

__all__ = ["SramCalibration", "CALIB_32NM_LP", "SramArrayModel"]


@dataclass(frozen=True)
class SramCalibration:
    """Per-node constants of the CACTI-lite model (values at nominal V).

    Attributes:
        e_bitline_fj: read energy per (row, active column) pair, fJ.
        e_wordline_fj: energy per column on the fired wordline, fJ.
        e_sense_fj: sense-amplifier energy per accessed bit, fJ.
        e_decode_fj_per_addr_bit: row/column decode energy per address
            bit, fJ.
        write_bitline_factor: full-swing write drive relative to the read
            bitline energy.
        p_cell_leak_pw: leakage power per cell at nominal voltage and the
            node's reference temperature, pW.
        cell_area_um2: 6T low-power cell area, um^2.
        periphery_area_factor: decoder/sense/IO area as a fraction of the
            cell-array area.
    """

    e_bitline_fj: float = 2.0
    e_wordline_fj: float = 4.0
    e_sense_fj: float = 40.0
    e_decode_fj_per_addr_bit: float = 42.5
    write_bitline_factor: float = 1.25
    p_cell_leak_pw: float = 60.0
    cell_area_um2: float = 0.25
    periphery_area_factor: float = 0.30


#: Calibration for the paper's 32 nm low-power node at 343 K.
CALIB_32NM_LP = SramCalibration()


class SramArrayModel:
    """Energy/leakage/area of one banked SRAM array.

    Args:
        geometry: array organisation (words, width, banks).
        tech: technology node providing the voltage scaling laws.
        calibration: per-node constants; defaults to the 32 nm LP set.

    Example:
        >>> from repro.mem.layout import PAPER_GEOMETRY
        >>> from repro.energy.technology import TECH_32NM_LP
        >>> model = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        >>> 1.0 < model.read_energy_pj(0.9) < 20.0
        True
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        tech: Technology,
        calibration: SramCalibration = CALIB_32NM_LP,
    ) -> None:
        self.geometry = geometry
        self.tech = tech
        self.calib = calibration

        words_per_bank = geometry.words_per_bank
        word_bits = geometry.word_bits
        # Choose words-per-row so the sub-array is roughly square in cells.
        wpr = max(1, round(math.sqrt(words_per_bank / word_bits)))
        self.words_per_row = wpr
        self.rows = math.ceil(words_per_bank / wpr)
        self.columns = wpr * word_bits
        self.address_bits = max(1, math.ceil(math.log2(geometry.n_words)))

    # -- per-access dynamic energy ------------------------------------------

    def _access_energy_fj_nominal(self, is_write: bool) -> float:
        c = self.calib
        bits = self.geometry.word_bits
        bitline = c.e_bitline_fj * self.rows * bits
        if is_write:
            bitline *= c.write_bitline_factor
        wordline = c.e_wordline_fj * self.columns
        sense = 0.0 if is_write else c.e_sense_fj * bits
        decode = c.e_decode_fj_per_addr_bit * self.address_bits
        return bitline + wordline + sense + decode

    def read_energy_pj(self, voltage: float) -> float:
        """Energy of one word read at ``voltage``, picojoules."""
        scale = self.tech.dynamic_scale(voltage)
        return self._access_energy_fj_nominal(is_write=False) * scale / 1000.0

    def write_energy_pj(self, voltage: float) -> float:
        """Energy of one word write at ``voltage``, picojoules."""
        scale = self.tech.dynamic_scale(voltage)
        return self._access_energy_fj_nominal(is_write=True) * scale / 1000.0

    # -- static power ---------------------------------------------------------

    def leakage_power_uw(self, voltage: float) -> float:
        """Array leakage power at ``voltage``, microwatts.

        Scales with total cell count; the calibration's per-cell leakage
        already refers to the node's reference temperature (343 K in the
        paper's setup).
        """
        cells = self.geometry.capacity_bits
        p_nominal_pw = self.calib.p_cell_leak_pw * cells
        return p_nominal_pw * self.tech.leakage_scale(voltage) / 1e6

    # -- area ------------------------------------------------------------------

    def area_mm2(self) -> float:
        """Silicon area of the array, mm^2."""
        cell_area = self.calib.cell_area_um2 * self.geometry.capacity_bits
        total = cell_area * (1.0 + self.calib.periphery_area_factor)
        return total / 1e6

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"SramArrayModel({g.n_words}x{g.word_bits}b, {g.n_banks} banks, "
            f"{self.rows}r x {self.columns}c per bank)"
        )


def validate_positive(value: float, name: str) -> float:
    """Shared guard for model inputs that must be positive."""
    if value <= 0:
        raise EnergyModelError(f"{name} must be positive, got {value}")
    return value
