"""Tests for stuck-at fault maps (Section V error model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.mem import (
    FaultMap,
    empty_fault_map,
    position_fault_map,
    sample_fault_map,
)


class TestFaultMapValidation:
    def test_rejects_overlapping_masks(self):
        with pytest.raises(MemoryModelError):
            FaultMap(
                word_bits=16,
                set_mask=np.array([1]),
                clear_mask=np.array([1]),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(MemoryModelError):
            FaultMap(
                word_bits=16,
                set_mask=np.array([0, 0]),
                clear_mask=np.array([0]),
            )

    def test_rejects_mask_beyond_width(self):
        with pytest.raises(MemoryModelError):
            FaultMap(
                word_bits=8,
                set_mask=np.array([0x100]),
                clear_mask=np.array([0]),
            )

    def test_rejects_non_positive_width(self):
        with pytest.raises(MemoryModelError):
            FaultMap(word_bits=0, set_mask=np.array([0]), clear_mask=np.array([0]))


class TestApply:
    def test_stuck_at_one_and_zero(self):
        fm = FaultMap(
            word_bits=16,
            set_mask=np.array([0x0001, 0x0000]),
            clear_mask=np.array([0x0000, 0x8000]),
        )
        out = fm.apply(np.array([0x0000, 0xFFFF]))
        assert out.tolist() == [0x0001, 0x7FFF]

    def test_apply_is_idempotent(self, rng):
        fm = sample_fault_map(64, 16, 0.05, rng)
        words = rng.integers(0, 1 << 16, size=64, dtype=np.int64)
        once = fm.apply(words)
        assert np.array_equal(fm.apply(once), once)

    def test_apply_with_indices(self):
        fm = position_fault_map(8, 16, 15, 1)
        out = fm.apply(np.array([0, 0]), indices=np.array([3, 5]))
        assert out.tolist() == [0x8000, 0x8000]

    def test_apply_full_array_shape_check(self):
        fm = empty_fault_map(8, 16)
        with pytest.raises(MemoryModelError):
            fm.apply(np.zeros(4, dtype=np.int64))

    def test_apply_index_out_of_range(self):
        fm = empty_fault_map(8, 16)
        with pytest.raises(MemoryModelError):
            fm.apply(np.array([0]), indices=np.array([8]))

    def test_apply_index_shape_mismatch(self):
        fm = empty_fault_map(8, 16)
        with pytest.raises(MemoryModelError):
            fm.apply(np.array([0, 0]), indices=np.array([1]))


class TestEmpty:
    def test_no_faults(self):
        fm = empty_fault_map(128, 16)
        assert fm.n_faults == 0
        words = np.arange(128, dtype=np.int64)
        assert np.array_equal(fm.apply(words), words)

    def test_rejects_negative_words(self):
        with pytest.raises(MemoryModelError):
            empty_fault_map(-1, 16)


class TestSampling:
    def test_ber_zero_is_fault_free(self, rng):
        assert sample_fault_map(1000, 16, 0.0, rng).n_faults == 0

    def test_ber_one_sticks_every_bit(self, rng):
        fm = sample_fault_map(100, 16, 1.0, rng)
        assert fm.n_faults == 100 * 16

    def test_fault_count_tracks_ber(self, rng):
        n_words, bits, ber = 4096, 16, 0.01
        fm = sample_fault_map(n_words, bits, ber, rng)
        expected = n_words * bits * ber
        assert 0.5 * expected < fm.n_faults < 1.5 * expected

    def test_stuck_values_are_balanced(self, rng):
        fm = sample_fault_map(4096, 16, 0.05, rng)
        ones = int(np.bitwise_count(fm.set_mask).sum())
        zeros = int(np.bitwise_count(fm.clear_mask).sum())
        assert 0.8 < ones / zeros < 1.25

    def test_rejects_invalid_ber(self, rng):
        with pytest.raises(MemoryModelError):
            sample_fault_map(10, 16, -0.1, rng)
        with pytest.raises(MemoryModelError):
            sample_fault_map(10, 16, 1.5, rng)

    def test_deterministic_given_rng_state(self):
        a = sample_fault_map(256, 22, 0.01, np.random.default_rng(9))
        b = sample_fault_map(256, 22, 0.01, np.random.default_rng(9))
        assert np.array_equal(a.set_mask, b.set_mask)
        assert np.array_equal(a.clear_mask, b.clear_mask)


class TestPositionMap:
    @pytest.mark.parametrize("position", [0, 7, 15])
    @pytest.mark.parametrize("stuck", [0, 1])
    def test_every_word_affected(self, position, stuck):
        fm = position_fault_map(32, 16, position, stuck)
        assert fm.n_faults == 32
        words = np.zeros(32, dtype=np.int64) if stuck else np.full(
            32, 0xFFFF, dtype=np.int64
        )
        out = fm.apply(words)
        expected = (1 << position) if stuck else 0xFFFF & ~(1 << position)
        assert np.all(out == expected)

    def test_rejects_bad_position(self):
        with pytest.raises(MemoryModelError):
            position_fault_map(8, 16, 16, 1)

    def test_rejects_bad_stuck_value(self):
        with pytest.raises(MemoryModelError):
            position_fault_map(8, 16, 3, 2)


class TestRestriction:
    def test_restricted_drops_high_columns(self, rng):
        fm = sample_fault_map(512, 22, 0.05, rng)
        narrow = fm.restricted_to(16)
        assert narrow.word_bits == 16
        assert int(narrow.set_mask.max()) <= 0xFFFF
        # Low 16 columns identical (the fair-comparison requirement).
        assert np.array_equal(narrow.set_mask, fm.set_mask & 0xFFFF)
        assert np.array_equal(narrow.clear_mask, fm.clear_mask & 0xFFFF)

    def test_cannot_widen(self, rng):
        fm = sample_fault_map(16, 16, 0.01, rng)
        with pytest.raises(MemoryModelError):
            fm.restricted_to(22)

    @settings(max_examples=25)
    @given(ber=st.floats(min_value=0.001, max_value=0.2))
    def test_restriction_never_adds_faults(self, ber):
        fm = sample_fault_map(128, 22, ber, np.random.default_rng(3))
        assert fm.restricted_to(16).n_faults <= fm.n_faults
