"""Shipped mission scenarios: reference timelines for the adaptive runtime.

Each scenario is a deterministic :class:`~repro.runtime.mission.MissionSpec`
factory capturing one day-in-the-life of a wearable ECG node:

* ``overnight`` — 8 h of sleep monitoring with brief motion episodes;
* ``active_day`` — a full 24 h with commute/gym/walk stress bursts;
* ``pvc_ward`` — a 12 h clinical shift mixing PVC-storm pathology
  episodes (which coincide with patient motion) with calm monitoring,
  on a DREAM + SEC/DED lattice;
* ``harvester`` — 24 h on a tiny harvesting buffer that *cannot* sustain
  the top operating point, the state-of-charge scheduler's home turf.

Stress levels are deliberately bimodal (quiet segments stay at or below
0.2, episodes at or above 0.7) — a node's cheap sensors can tell "moving
hard" from "still", not grade a continuum, and the gap keeps
feed-forward policies out of their own hysteresis region.

Batteries are thin-film/printed micro-cells (µAh class), sized so that a
mission consumes a visible fraction of the charge: lifetime differences
between policies then show up in days, not abstract percentages.

Register custom scenarios with :func:`register_scenario`; campaign grids
reference every scenario by name.
"""

from __future__ import annotations

from collections.abc import Callable

from ..energy.battery import BatteryModel
from ..errors import MissionError
from .mission import MissionSpec, SegmentSpec

__all__ = [
    "SCENARIOS",
    "register_scenario",
    "scenario_spec",
    "scenario_names",
]

#: Registry of scenario factories, keyed by scenario name.
SCENARIOS: dict[str, Callable[[], MissionSpec]] = {}

_HOUR = 3600.0


def register_scenario(
    name: str,
) -> Callable[[Callable[[], MissionSpec]], Callable[[], MissionSpec]]:
    """Decorator registering a mission factory under ``name``."""

    def _register(
        factory: Callable[[], MissionSpec],
    ) -> Callable[[], MissionSpec]:
        if name in SCENARIOS:
            raise MissionError(f"scenario {name!r} already registered")
        SCENARIOS[name] = factory
        return factory

    return _register


def scenario_spec(name: str) -> MissionSpec:
    """Build the registered scenario ``name``."""
    if name not in SCENARIOS:
        raise MissionError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return SCENARIOS[name]()


def scenario_names() -> list[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(SCENARIOS)


@register_scenario("overnight")
def _overnight() -> MissionSpec:
    """8 h of sleep monitoring: long quiet stretches, two motion bursts."""
    return MissionSpec(
        name="overnight",
        app="morphology",
        segments=(
            SegmentSpec("sleep-early", 3.0 * _HOUR, record="100"),
            SegmentSpec(
                "rem-motion", 0.5 * _HOUR, record="100",
                noise_gain=2.5, stress=0.8, ber_multiplier=30.0,
            ),
            SegmentSpec("sleep-late", 3.5 * _HOUR, record="101"),
            SegmentSpec(
                "waking", 1.0 * _HOUR, record="100",
                noise_gain=1.5, stress=0.7, ber_multiplier=10.0,
            ),
        ),
        voltages=(0.65, 0.70, 0.80),
        emts=("secded",),
        battery=BatteryModel(capacity_mah=0.25),
    )


@register_scenario("active_day")
def _active_day() -> MissionSpec:
    """A full 24 h: commute, gym and walk episodes between calm blocks."""
    return MissionSpec(
        name="active_day",
        app="morphology",
        segments=(
            SegmentSpec("night", 5.0 * _HOUR, record="100"),
            SegmentSpec("morning", 3.0 * _HOUR, record="100", stress=0.1),
            SegmentSpec(
                "commute", 1.0 * _HOUR, record="100",
                noise_gain=2.0, stress=0.8, ber_multiplier=30.0,
            ),
            SegmentSpec("office", 6.0 * _HOUR, record="103", stress=0.1),
            SegmentSpec(
                "gym", 1.0 * _HOUR, record="200",
                noise_gain=3.0, stress=0.9, ber_multiplier=50.0,
            ),
            SegmentSpec("afternoon", 4.0 * _HOUR, record="100", stress=0.1),
            SegmentSpec(
                "walk", 2.0 * _HOUR, record="101",
                noise_gain=1.5, stress=0.7, ber_multiplier=10.0,
            ),
            SegmentSpec("evening", 2.0 * _HOUR, record="100", stress=0.05),
        ),
        voltages=(0.65, 0.70, 0.80),
        emts=("secded",),
        battery=BatteryModel(capacity_mah=0.25),
    )


@register_scenario("pvc_ward")
def _pvc_ward() -> MissionSpec:
    """12 h clinical shift: PVC storms (with patient motion) and calm
    stretches, on the mixed DREAM + SEC/DED lattice."""
    return MissionSpec(
        name="pvc_ward",
        app="morphology",
        segments=(
            SegmentSpec("ward-calm", 4.0 * _HOUR, record="100", stress=0.05),
            SegmentSpec(
                "pvc-storm", 1.0 * _HOUR, record="119",
                noise_gain=1.5, stress=0.7, ber_multiplier=20.0,
            ),
            SegmentSpec("ward-calm-2", 3.0 * _HOUR, record="103", stress=0.05),
            SegmentSpec("bigeminy", 2.0 * _HOUR, record="106", stress=0.1),
            SegmentSpec(
                "rounds", 1.0 * _HOUR, record="100",
                noise_gain=2.0, stress=0.7, ber_multiplier=10.0,
            ),
            SegmentSpec("ward-night", 1.0 * _HOUR, record="100"),
        ),
        voltages=(0.65, 0.70, 0.80),
        emts=("dream", "secded"),
        battery=BatteryModel(capacity_mah=0.25),
    )


@register_scenario("harvester")
def _harvester() -> MissionSpec:
    """24 h on a harvesting buffer too small for the top rung: policies
    that ignore the state of charge die before the day ends."""
    return MissionSpec(
        name="harvester",
        app="morphology",
        segments=(
            SegmentSpec("morning", 6.0 * _HOUR, record="100"),
            SegmentSpec("midday", 6.0 * _HOUR, record="103", stress=0.1),
            SegmentSpec(
                "burst", 1.0 * _HOUR, record="100",
                noise_gain=2.0, stress=0.8, ber_multiplier=30.0,
            ),
            SegmentSpec("afternoon", 5.0 * _HOUR, record="100", stress=0.1),
            SegmentSpec(
                "errand", 1.0 * _HOUR, record="101",
                noise_gain=1.5, stress=0.7, ber_multiplier=10.0,
            ),
            SegmentSpec("night", 5.0 * _HOUR, record="100"),
        ),
        voltages=(0.65, 0.70, 0.80),
        emts=("secded",),
        battery=BatteryModel(capacity_mah=0.09),
    )
