"""Run registry: lifecycle round-trips, crash tolerance, `repro runs`.

The registry is operational state, so its failure philosophy inverts
the tracer's: a torn line (a run killed mid-append) must be *skipped*
on load — one crashed run can never brick the run listing for every
run that came after it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import REGISTRY_BASENAME, RunRecord, RunRegistry, host_metadata


def test_register_finalize_round_trip(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register(
        "demo-abc123", name="demo", kind="sweep",
        spec_digest="deadbeef", trace_path=tmp_path / "demo-abc123.jsonl",
        started_at=100.0,
    )
    running = registry.get("demo-abc123")
    assert running.status == "running"
    assert running.kind == "sweep"
    assert running.host["python"]

    registry.finalize(
        "demo-abc123", "ok", wall_s=2.5,
        metrics={"n_points": 9, "n_failed": 0}, ended_at=102.5,
    )
    done = registry.get("demo-abc123")
    assert done.status == "ok"
    assert done.wall_s == 2.5
    assert done.metrics["n_points"] == 9
    # Identity and host carry forward: the latest line is self-contained.
    assert done.name == "demo"
    assert done.spec_digest == "deadbeef"
    assert done.host == running.host
    assert done.trace_path == str(tmp_path / "demo-abc123.jsonl")

    # Two lines on disk, last record per run id wins.
    lines = (tmp_path / REGISTRY_BASENAME).read_text().splitlines()
    assert len(lines) == 2
    assert RunRecord.from_dict(json.loads(lines[-1])) == done


def test_failed_run_records_error(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("bad-run", name="bad")
    registry.finalize("bad-run", "failed", error="ValueError: boom")
    record = registry.get("bad-run")
    assert record.status == "failed"
    assert record.error == "ValueError: boom"


def test_torn_lines_are_skipped_not_fatal(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("good-run", name="good", started_at=1.0)
    with open(registry.path, "a", encoding="utf-8") as handle:
        handle.write('{"run_id": "torn-run", "status": "run')  # killed mid-append
        handle.write("\n")
        handle.write("not json at all\n")
        handle.write('{"status": "ok"}\n')  # no run_id
    runs = registry.load()
    assert set(runs) == {"good-run"}


def test_runs_filtering_and_latest(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("sweep-aaa", name="volt-sweep", kind="sweep",
                      started_at=10.0)
    registry.finalize("sweep-aaa", "ok", wall_s=1.0)
    registry.register("cohort-bbb", name="pilot-cohort", kind="cohort",
                      started_at=20.0)
    registry.finalize("cohort-bbb", "failed", error="boom")
    registry.register("cohort-ccc", name="pilot-cohort", kind="cohort",
                      started_at=30.0)

    assert [r.run_id for r in registry.runs()] == [
        "cohort-ccc", "cohort-bbb", "sweep-aaa",
    ]
    assert [r.run_id for r in registry.runs(kind="cohort")] == [
        "cohort-ccc", "cohort-bbb",
    ]
    assert [r.run_id for r in registry.runs(status="failed")] == [
        "cohort-bbb",
    ]
    assert [r.run_id for r in registry.runs(name="volt")] == ["sweep-aaa"]
    assert [r.run_id for r in registry.runs(limit=1)] == ["cohort-ccc"]
    assert registry.latest().run_id == "cohort-ccc"
    assert registry.latest(status="ok").run_id == "sweep-aaa"
    with pytest.raises(ObsError, match="unknown run status"):
        registry.runs(status="done")


def test_empty_and_invalid_registrations_rejected(tmp_path):
    registry = RunRegistry(tmp_path)
    with pytest.raises(ObsError, match="non-empty"):
        registry.register("")
    with pytest.raises(ObsError, match="'ok', 'failed' or 'interrupted'"):
        registry.finalize("whatever", "running")


def test_finalize_without_register_still_lands(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.finalize("orphan-run", "ok", wall_s=3.0)
    record = registry.get("orphan-run")
    assert record.status == "ok"
    assert record.wall_s == 3.0


def _dead_pid() -> int:
    """The pid of a child that provably no longer exists (reaped)."""
    import subprocess
    import sys

    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _set_pid(registry: RunRegistry, run_id: str, pid) -> None:
    """Rewrite one run's registered pid in place (crash simulation)."""
    lines = [
        json.loads(line)
        for line in registry.path.read_text().splitlines()
    ]
    for record in lines:
        if record["run_id"] == run_id:
            record["pid"] = pid
    registry.path.write_text(
        "".join(json.dumps(record) + "\n" for record in lines)
    )


def test_stale_detection_needs_dead_owner_on_this_host(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("live-run", started_at=1.0)
    # This process registered it and is plainly alive.
    assert not registry.get("live-run").is_stale()
    assert registry.get("live-run").effective_status() == "running"

    registry.register("crashed-run", started_at=2.0)
    _set_pid(registry, "crashed-run", _dead_pid())
    record = registry.get("crashed-run")
    assert record.is_stale()
    assert record.effective_status() == "stale"

    # Terminal records are never stale, whatever their pid says.
    registry.register("done-run", started_at=3.0)
    _set_pid(registry, "done-run", _dead_pid())
    registry.finalize("done-run", "ok", wall_s=1.0)
    assert not registry.get("done-run").is_stale()

    # Records without a pid (pre-1.6 writers) are assumed live.
    _set_pid(registry, "live-run", None)
    assert not registry.get("live-run").is_stale()


def test_stale_is_undecidable_across_hosts(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("remote-run", started_at=1.0)
    _set_pid(registry, "remote-run", _dead_pid())
    lines = [
        json.loads(line)
        for line in registry.path.read_text().splitlines()
    ]
    lines[0]["host"]["hostname"] = "some-other-machine"
    registry.path.write_text(json.dumps(lines[0]) + "\n")
    assert not registry.get("remote-run").is_stale()


def test_runs_status_filter_separates_stale_from_running(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("live-run", started_at=1.0)
    registry.register("crashed-run", started_at=2.0)
    _set_pid(registry, "crashed-run", _dead_pid())
    assert [r.run_id for r in registry.runs(status="running")] == [
        "live-run",
    ]
    assert [r.run_id for r in registry.runs(status="stale")] == [
        "crashed-run",
    ]


def test_prune_stale_finalizes_as_interrupted(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("live-run", started_at=1.0)
    registry.register("crashed-run", started_at=2.0)
    dead = _dead_pid()
    _set_pid(registry, "crashed-run", dead)

    pruned = registry.runs(status="stale")
    assert [r.run_id for r in pruned] == ["crashed-run"]
    (record,) = registry.prune_stale()
    assert record.run_id == "crashed-run"
    assert record.status == "interrupted"
    assert f"pruned: owner pid {dead} died" in record.error

    # The live run is untouched; a second prune is a no-op.
    assert registry.get("live-run").status == "running"
    assert registry.get("crashed-run").status == "interrupted"
    assert registry.prune_stale() == []


def test_cli_runs_renders_stale_and_prunes(tmp_path, capsys):
    registry = RunRegistry(tmp_path)
    registry.register("crashed-run", name="crashy", kind="sweep",
                      started_at=2.0)
    dead = _dead_pid()
    _set_pid(registry, "crashed-run", dead)

    assert main(["runs", "--trace-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "stale" in out
    assert f"owner pid {dead} is dead" in out
    assert "--prune-stale" in out

    assert main(
        ["runs", "--trace-dir", str(tmp_path), "--status", "stale"]
    ) == 0
    assert "crashed-run" in capsys.readouterr().out

    assert main(
        ["runs", "--trace-dir", str(tmp_path), "--prune-stale"]
    ) == 0
    out = capsys.readouterr().out
    assert "pruned stale run crashed-run -> interrupted" in out
    assert registry.get("crashed-run").status == "interrupted"

    # Nothing left to prune.
    assert main(
        ["runs", "--trace-dir", str(tmp_path), "--prune-stale"]
    ) == 0
    assert "no stale runs" in capsys.readouterr().out


def test_resource_fields_round_trip(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.register("res-run", name="res", started_at=1.0)
    registry.finalize(
        "res-run", "ok", wall_s=2.0,
        peak_rss_bytes=96 * 1048576, cpu_s=3.75,
    )
    record = registry.get("res-run")
    assert record.peak_rss_bytes == 96 * 1048576
    assert record.cpu_s == 3.75
    line = json.loads(
        (tmp_path / REGISTRY_BASENAME).read_text().splitlines()[-1]
    )
    assert line["peak_rss_bytes"] == 96 * 1048576
    assert line["cpu_s"] == 3.75


def test_pre_15_records_load_with_blank_resources(tmp_path, capsys):
    # A registry line written before schema revision 1.5: no
    # peak_rss_bytes / cpu_s keys at all.  It must load as None and
    # render blank — never KeyError, never a fabricated zero.
    registry = RunRegistry(tmp_path)
    old_line = {
        "run_id": "old-run", "name": "old", "kind": "sweep",
        "status": "ok", "started_at": 5.0, "ended_at": 6.0,
        "wall_s": 1.0, "trace_path": "", "host": {}, "metrics": {},
    }
    registry.root.mkdir(parents=True, exist_ok=True)
    registry.path.write_text(json.dumps(old_line) + "\n", encoding="utf-8")

    record = registry.get("old-run")
    assert record.peak_rss_bytes is None
    assert record.cpu_s is None
    # An unknowing round trip does not invent the missing keys.
    assert "peak_rss_bytes" not in record.to_dict()
    assert "cpu_s" not in record.to_dict()

    assert main(["runs", "--trace-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    (row,) = [line for line in out.splitlines() if "old-run" in line]
    assert " - " in row  # blank CPU / PEAK RSS columns


def test_cli_runs_shows_resource_columns(tmp_path, capsys):
    registry = RunRegistry(tmp_path)
    registry.register("res-run", name="res", started_at=1.0)
    registry.finalize(
        "res-run", "ok", wall_s=2.0,
        peak_rss_bytes=96 * 1048576, cpu_s=3.75,
    )
    assert main(["runs", "--trace-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "CPU" in out and "PEAK RSS" in out
    assert "3.8 s" in out
    assert "96 MB" in out


def test_host_metadata_fingerprint():
    host = host_metadata()
    assert set(host) >= {
        "python", "platform", "machine", "cpus", "repro", "hostname",
    }
    assert host["cpus"] >= 1


def test_cli_runs_lists_and_filters(tmp_path, capsys):
    registry = RunRegistry(tmp_path)
    registry.register("cohort-aaa", name="pilot", kind="cohort",
                      started_at=10.0)
    registry.finalize(
        "cohort-aaa", "ok", wall_s=1.5,
        metrics={"n_points": 4, "n_failed": 0},
    )
    registry.register("sweep-bbb", name="volts", kind="sweep",
                      started_at=20.0)

    assert main(["runs", "--trace-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "cohort-aaa" in out and "sweep-bbb" in out
    assert "ok" in out and "running" in out

    assert main(
        ["runs", "--trace-dir", str(tmp_path), "--kind", "cohort"]
    ) == 0
    out = capsys.readouterr().out
    assert "cohort-aaa" in out and "sweep-bbb" not in out

    assert main(["runs", "--trace-dir", str(tmp_path), "--latest"]) == 0
    assert capsys.readouterr().out.strip() == "sweep-bbb"


def test_cli_runs_empty_registry(tmp_path, capsys):
    assert main(["runs", "--trace-dir", str(tmp_path)]) == 0
    assert "No runs registered" in capsys.readouterr().out
    # --latest is for scripting: nothing to print is an error there.
    assert main(["runs", "--trace-dir", str(tmp_path), "--latest"]) == 1


def test_session_run_registers_and_finalizes(tmp_path):
    from repro import obs
    from repro.api.schema import Experiment, Fig2Params
    from repro.api.session import Session

    obs.set_trace_dir(tmp_path)
    experiment = Experiment(
        name="reg-fig2",
        kind="figure",
        params=Fig2Params(
            apps=("morphology",), records=("100",), duration_s=2.0
        ),
    )
    session = Session(workers=1, store_dir=tmp_path / "stores")
    handle = session.run(experiment)

    registry = RunRegistry(tmp_path)
    record = registry.get(session.run_id_for(experiment))
    assert record is not None
    assert record.status == "ok"
    assert record.kind == "figure"
    assert record.wall_s is not None and record.wall_s > 0
    assert record.metrics["n_points"] >= 1
    assert record.metrics["n_failed"] == 0
    assert record.trace_path == handle.telemetry()["trace_path"]
