"""Compressed Sensing application (paper Section II-3).

Implements the WBSN compressed-sensing scheme of Mamaghanian et al.
([10], [11] in the paper): on the sensor node, a block of ``N`` ECG
samples is projected through a **sparse binary sensing matrix** (``d``
ones per column — multiplier-free, just additions) into ``M = N/2``
measurements, a 50 % lossy compression.  The measurement vector is what
the node stores and transmits; on the gateway, the signal is recovered by
sparse approximation in an orthonormal Daubechies wavelet basis via
Orthogonal Matching Pursuit (OMP).

Quality semantics (paper Section VI-A): CS "deteriorates the data even in
the case of an error-free execution", so its Fig 4 ceiling is the
*reconstruction* SNR (~85 dB in the paper's setup), not the 16-bit bound.
Accordingly :meth:`CompressedSensingApp.output_snr` reconstructs the
signal from the (possibly corrupted) measurements and scores it against
the original input samples.

On-node data in the faulty memory: the input block and the measurement
(output) buffer.  The sensing matrix is regenerated on the fly from a
seed (an LFSR in hardware) and therefore not exposed to memory faults.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SignalError
from ..fixedpoint import Q15, saturate
from ..mem.fabric import MemoryFabric
from ..signals.metrics import SNR_CAP_DB, snr_db
from .base import BiomedicalApp

__all__ = [
    "CompressedSensingApp",
    "sparse_binary_matrix",
    "daubechies4_basis",
    "omp_reconstruct",
]


def sparse_binary_matrix(
    n_measurements: int,
    n_samples: int,
    ones_per_column: int,
    seed: int,
) -> np.ndarray:
    """The sparse binary sensing matrix of [10]: ``d`` ones per column.

    Returns an ``(n_measurements, n_samples)`` 0/1 ``int64`` matrix drawn
    deterministically from ``seed``.
    """
    if not 0 < ones_per_column <= n_measurements:
        raise SignalError(
            f"ones_per_column must be in (0, {n_measurements}], "
            f"got {ones_per_column}"
        )
    rng = np.random.default_rng(seed)
    phi = np.zeros((n_measurements, n_samples), dtype=np.int64)
    for column in range(n_samples):
        rows = rng.choice(n_measurements, size=ones_per_column, replace=False)
        phi[rows, column] = 1
    return phi


def _dwt_step_periodic(values: np.ndarray, h: np.ndarray, g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One periodised orthonormal analysis step (float domain)."""
    n = values.size
    taps = h.size
    index = (np.arange(0, n, 2)[:, None] + np.arange(taps)[None, :]) % n
    windows = values[index]
    return windows @ h, windows @ g


def daubechies4_basis(n_samples: int, n_levels: int = 5) -> np.ndarray:
    """Orthonormal periodised Daubechies-4 synthesis matrix (``N x N``).

    Column ``k`` is the waveform whose analysis coefficients are the unit
    vector ``e_k``; because the transform is orthonormal the synthesis
    matrix is the transpose of the analysis matrix, which we build by
    analysing the identity.
    """
    if n_samples & (n_samples - 1) or n_samples < (1 << n_levels):
        raise SignalError(
            f"n_samples must be a power of two >= 2**{n_levels}, "
            f"got {n_samples}"
        )
    # Daubechies-4 (two vanishing moments) orthonormal filters.
    root3 = math.sqrt(3.0)
    norm = 4.0 * math.sqrt(2.0)
    h = np.array(
        [(1 + root3) / norm, (3 + root3) / norm,
         (3 - root3) / norm, (1 - root3) / norm]
    )
    g = h[::-1].copy()
    g[1::2] *= -1.0

    analysis = np.zeros((n_samples, n_samples))
    basis = np.eye(n_samples)
    for column in range(n_samples):
        approx = basis[:, column]
        coeffs = []
        for _ in range(n_levels):
            approx, detail = _dwt_step_periodic(approx, h, g)
            coeffs.append(detail)
        coeffs.append(approx)
        # Coefficient layout: [aJ, dJ, ..., d1].
        analysis[:, column] = np.concatenate(coeffs[::-1][0:1] + coeffs[-2::-1])
    return analysis.T


def omp_reconstruct(
    sensing: np.ndarray,
    basis: np.ndarray,
    measurements: np.ndarray,
    max_atoms: int,
    tolerance: float = 1e-4,
    dictionary: np.ndarray | None = None,
) -> np.ndarray:
    """Orthogonal Matching Pursuit recovery of one block.

    Args:
        sensing: the ``(M, N)`` binary sensing matrix.
        basis: the ``(N, N)`` orthonormal synthesis matrix.
        measurements: the (rescaled) measurement vector of length ``M``.
        max_atoms: sparsity budget.
        tolerance: stop when the residual norm falls below ``tolerance``
            times the measurement norm.
        dictionary: optional precomputed ``sensing @ basis`` (the
            composed dictionary); pass it when reconstructing many
            blocks to avoid recomputing the large matrix product.

    Returns:
        The reconstructed length-``N`` sample vector (float).
    """
    if dictionary is None:
        dictionary = sensing.astype(np.float64) @ basis
    column_norms = np.linalg.norm(dictionary, axis=0)
    column_norms[column_norms == 0] = 1.0
    normalised = dictionary / column_norms

    y = measurements.astype(np.float64)
    y_norm = float(np.linalg.norm(y))
    if y_norm == 0.0:
        return np.zeros(basis.shape[0])

    residual = y.copy()
    support: list[int] = []
    coeffs = np.zeros(0)
    for _ in range(max_atoms):
        correlations = np.abs(normalised.T @ residual)
        if support:
            correlations[support] = -1.0
        atom = int(np.argmax(correlations))
        support.append(atom)
        subdict = dictionary[:, support]
        gram = subdict.T @ subdict
        rhs = subdict.T @ y
        coeffs = np.linalg.solve(
            gram + 1e-10 * np.eye(len(support)), rhs
        )
        residual = y - subdict @ coeffs
        if np.linalg.norm(residual) < tolerance * y_norm:
            break
    sparse = np.zeros(basis.shape[1])
    sparse[support] = coeffs
    return basis @ sparse


class CompressedSensingApp(BiomedicalApp):
    """50 % compressed sensing with OMP gateway reconstruction.

    Args:
        block_size: samples per CS block (``N``; power of two).
        compression: measurement fraction ``M/N`` (the paper uses 0.5).
        ones_per_column: sparse-binary density ``d``.
        seed: sensing-matrix seed (an LFSR state in hardware).
        max_atoms: OMP sparsity budget per block.

    The on-node output (what :meth:`run` returns and what occupies the
    output buffer of the faulty memory) is the concatenated measurement
    vectors, right-shifted to fit 16-bit words.
    """

    name = "compressed_sensing"
    description = "50% lossy compressed sensing (sparse binary + OMP)"
    #: The node side is one projection plus elementwise scaling, both
    #: shape-agnostic; only the gateway OMP (quality scoring) loops
    #: per trial in :meth:`output_snr_batch`.
    supports_batch = True

    def __init__(
        self,
        block_size: int = 512,
        compression: float = 0.5,
        ones_per_column: int = 4,
        seed: int = 2016,
        max_atoms: int = 64,
    ) -> None:
        super().__init__()
        if block_size & (block_size - 1) or block_size < 32:
            raise SignalError(
                f"block_size must be a power of two >= 32, got {block_size}"
            )
        if not 0.0 < compression < 1.0:
            raise SignalError(
                f"compression must be in (0, 1), got {compression}"
            )
        self.block_size = block_size
        self.n_measurements = int(round(block_size * compression))
        self.ones_per_column = ones_per_column
        self.seed = seed
        self.max_atoms = max_atoms

        self._phi = sparse_binary_matrix(
            self.n_measurements, block_size, ones_per_column, seed
        )
        # Right-shift that guarantees any measurement fits 16 signed bits:
        # a measurement sums `row weight` samples of magnitude < 2**15.
        max_row_weight = int(self._phi.sum(axis=1).max())
        self._shift = max(0, math.ceil(math.log2(max(max_row_weight, 1))))
        self._basis: np.ndarray | None = None
        self._dictionary: np.ndarray | None = None

    # -- node side -------------------------------------------------------------

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        # Complete blocks (of every stream) stack into one projection on
        # a batched fabric; the zero-padded trailing block keeps the
        # classic path (measurements are emitted untrimmed, as before).
        return self._run_in_windows(
            arr,
            self.block_size,
            fabric,
            lambda chunk: self._run_block(chunk, fabric),
            pad=True,
        )

    def _run_block(self, chunk: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        block = fabric.roundtrip("cs.input", chunk)
        # `block @ phi.T` equals `phi @ block` for a 1-D block and
        # projects every trial/window row of a stacked block.
        measurements = block @ self._phi.T
        scaled = saturate(measurements >> np.int64(self._shift), Q15)
        return fabric.roundtrip("cs.output", scaled)

    # -- gateway side ------------------------------------------------------------

    def _wavelet_basis(self) -> np.ndarray:
        if self._basis is None:
            self._basis = daubechies4_basis(self.block_size)
        return self._basis

    def _omp_dictionary(self) -> np.ndarray:
        """The composed Phi @ Psi dictionary, built once per instance."""
        if self._dictionary is None:
            self._dictionary = (
                self._phi.astype(np.float64) @ self._wavelet_basis()
            )
        return self._dictionary

    def reconstruct(self, measurements: np.ndarray) -> np.ndarray:
        """Recover the sample stream from concatenated measurements."""
        y = np.asarray(measurements, dtype=np.float64)
        m = self.n_measurements
        if y.size % m:
            raise SignalError(
                f"measurement stream length {y.size} is not a multiple "
                f"of M={m}"
            )
        basis = self._wavelet_basis()
        dictionary = self._omp_dictionary()
        blocks = []
        for start in range(0, y.size, m):
            rescaled = y[start : start + m] * float(1 << self._shift)
            blocks.append(
                omp_reconstruct(
                    self._phi,
                    basis,
                    rescaled,
                    self.max_atoms,
                    dictionary=dictionary,
                )
            )
        return np.concatenate(blocks)

    # -- quality ----------------------------------------------------------------

    def output_snr(
        self,
        samples: np.ndarray,
        corrupted_output: np.ndarray,
        cap_db: float = SNR_CAP_DB,
    ) -> float:
        """Reconstruction SNR against the *original* input samples.

        This is the paper's CS quality metric: even the error-free output
        only reaches the lossy-compression ceiling (the ~85 dB dashed
        line of Fig 4), because the reference is the uncompressed signal.
        """
        arr = self._check_samples(samples)
        reconstruction = self.reconstruct(corrupted_output)[: arr.size]
        return snr_db(arr, reconstruction, cap_db=cap_db)

    def output_snr_batch(
        self,
        samples: np.ndarray,
        corrupted_outputs: np.ndarray,
        cap_db: float = SNR_CAP_DB,
    ) -> np.ndarray:
        """Per-trial reconstruction SNR of a batched measurement stack.

        OMP's greedy support selection is data-dependent, so the
        gateway reconstruction runs per trial — but against the
        per-instance cached ``Phi @ Psi`` dictionary, and only after the
        whole node-side pipeline ran batched.
        """
        stack = np.asarray(corrupted_outputs)
        return np.asarray(
            [
                self.output_snr(samples, row, cap_db=cap_db)
                for row in stack
            ]
        )
