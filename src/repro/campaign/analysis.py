"""Campaign analytics: Pareto frontiers, pivots, trade-off extraction.

Once a campaign's grid is in the result store, the interesting questions
are relational: which operating points are energy/quality optimal, how
does a metric vary across two axes, and which supply-voltage floors does
each EMT sustain for a given output tolerance (the paper's Section VI-C
question).  These helpers answer them over plain stored records — no
re-simulation — so analyses stay cheap to iterate on after an expensive
sweep.

Records are the runner/store dicts: values are looked up first among the
point's ``params`` (axis coordinates), then inside its ``result``.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import CampaignError

__all__ = [
    "OperatingPoint",
    "record_value",
    "pareto_frontier",
    "pivot_table",
    "format_pivot",
    "quality_energy_rows",
    "extract_tradeoff",
]


def record_value(record: dict, key: str):
    """Look ``key`` up in a record's params, result, or top level.

    The top-level fallback lets the same accessors work on flat joined
    rows (e.g. from :func:`quality_energy_rows`) as on raw store records.
    """
    params = record.get("params", {})
    if key in params:
        return params[key]
    result = record.get("result") or {}
    if key in result:
        return result[key]
    if key in record:
        return record[key]
    raise CampaignError(
        f"record has no value {key!r} (params: {sorted(params)}, "
        f"result: {sorted(result)})"
    )


def pareto_frontier(
    records: Iterable[dict],
    x_key: str,
    y_key: str,
    minimize_x: bool = True,
    maximize_y: bool = True,
) -> list[dict]:
    """Non-dominated records under (x, y) — by default min-x, max-y.

    A record is dominated when another is at least as good on both
    objectives and strictly better on one.  Returns the surviving
    records sorted by ``x_key`` (best-x first under the chosen sense).
    Records missing either key are ignored, so a mixed-kind store can be
    fed directly.
    """
    scored = []
    for record in records:
        try:
            x = float(record_value(record, x_key))
            y = float(record_value(record, y_key))
        except CampaignError:
            continue
        scored.append((x if minimize_x else -x, y if maximize_y else -y, record))

    frontier: list[dict] = []
    best_y = -np.inf
    for x, y, record in sorted(scored, key=lambda item: (item[0], -item[1])):
        if y > best_y:
            frontier.append(record)
            best_y = y
    return frontier


def pivot_table(
    records: Iterable[dict],
    row_key: str,
    col_key: str,
    value_key: str,
) -> tuple[list, list, dict]:
    """Aggregate ``value_key`` (mean) over a two-axis cross-tabulation.

    Returns ``(row_labels, col_labels, cells)`` with sorted labels and
    ``cells[(row, col)]`` holding the mean value of all matching records
    (multiple matches arise when the campaign sweeps further axes).
    """
    bucket: dict[tuple, list[float]] = defaultdict(list)
    for record in records:
        try:
            row = record_value(record, row_key)
            col = record_value(record, col_key)
            value = float(record_value(record, value_key))
        except CampaignError:
            continue
        bucket[(row, col)].append(value)
    cells = {key: float(np.mean(vals)) for key, vals in bucket.items()}
    rows = sorted({r for r, _ in cells})
    cols = sorted({c for _, c in cells})
    return rows, cols, cells


def format_pivot(
    rows: Sequence,
    cols: Sequence,
    cells: dict,
    corner: str = "",
    fmt: str = "{:.1f}",
) -> str:
    """Render a :func:`pivot_table` result as an aligned ASCII table."""
    header = [corner] + [str(c) for c in cols]
    body = []
    for row in rows:
        line = [str(row)]
        for col in cols:
            value = cells.get((row, col))
            line.append("-" if value is None else fmt.format(value))
        body.append(line)
    widths = [len(h) for h in header]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))

    def render(line: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line))

    separator = "  ".join("-" * w for w in widths)
    return "\n".join(
        [render(header), separator] + [render(line) for line in body]
    )


@dataclass(frozen=True)
class OperatingPoint:
    """One EMT's deepest safe operating point and what it buys.

    Attributes:
        emt_name: the technique.
        v_min_safe: lowest contiguous voltage still meeting the quality
            requirement.
        saving_vs_nominal: fractional energy saving versus the baseline
            technique at nominal supply.
        snr_db: mean output SNR at the safe voltage.
        energy_pj: workload energy at the safe voltage.
    """

    emt_name: str
    v_min_safe: float
    saving_vs_nominal: float
    snr_db: float
    energy_pj: float


def quality_energy_rows(
    records: Iterable[dict], app_name: str
) -> list[dict]:
    """Join Monte-Carlo quality with energy by (EMT, voltage) for one app.

    ``montecarlo`` records carry per-EMT SNR statistics at an (app,
    voltage) point; ``energy`` records carry one EMT's energy at a
    voltage.  The join yields flat rows —
    ``{"app", "emt", "voltage", "snr_db", "energy_pj"}`` — the frontier
    and trade-off extractors consume.
    """
    records = list(records)
    energy: dict[tuple, float] = {}
    for record in records:
        if record.get("kind") == "energy" and record.get("status") == "ok":
            params = record["params"]
            # Keyed by the workload's application when the energy grid
            # swept one (``workload_app``), so a multi-app sweep joins
            # each app's quality with its own workload energy.
            key = (
                params.get("workload_app"),
                params["emt"],
                params["voltage"],
            )
            energy[key] = record["result"]["total_pj"]
    rows = []
    for record in records:
        if record.get("kind") != "montecarlo" or record.get("status") != "ok":
            continue
        params = record["params"]
        if params.get("app") != app_name:
            continue
        voltage = params["voltage"]
        for emt_name, snr in record["result"]["snr_mean_db"].items():
            total = energy.get((app_name, emt_name, voltage))
            if total is None:
                total = energy.get((None, emt_name, voltage))
            if total is not None:
                rows.append(
                    {
                        "app": app_name,
                        "emt": emt_name,
                        "voltage": voltage,
                        "snr_db": snr,
                        "energy_pj": total,
                    }
                )
    return rows


def extract_tradeoff(
    rows: Iterable[dict],
    tolerance_db: float,
    baseline_emt: str = "none",
    voltages: Iterable[float] | None = None,
) -> list[OperatingPoint]:
    """The Section VI-C policy question, answered from campaign rows.

    For each EMT in ``rows`` (as produced by
    :func:`quality_energy_rows`), find the lowest voltage whose SNR stays
    within ``tolerance_db`` of the error-free ceiling *contiguously from
    the top of the sweep* (a lower voltage that recovers by chance does
    not extend the safe range — the same rule as
    :meth:`repro.exp.fig4.Fig4Result.min_voltage_meeting`), and the
    energy saved there versus ``baseline_emt`` at nominal (highest swept)
    supply.

    Pass the sweep's intended ``voltages`` grid when rows may be
    incomplete (e.g. a sweep that tolerated failed points): the walk
    then covers the *planned* grid, so a voltage missing from the rows
    breaks contiguity instead of being silently skipped.  Without it the
    walk covers the union of voltages present in ``rows``, which cannot
    see a point that failed for every EMT at once.

    This is the stored-records counterpart of
    :func:`repro.exp.tradeoff.run_tradeoff`; the two implement the same
    VI-C rules and are pinned together by a cross-implementation test
    (``tests/exp/test_campaign_paths.py``) — change them in lockstep.
    """
    if tolerance_db < 0:
        raise CampaignError("tolerance must be non-negative")
    by_emt: dict[str, dict[float, dict]] = defaultdict(dict)
    for row in rows:
        by_emt[row["emt"]][row["voltage"]] = row
    if not by_emt:
        raise CampaignError("no joined quality/energy rows to analyse")

    # An unvalidated gap must not extend the safe range: walk the
    # intended grid when given, else the union of swept voltages (which
    # still catches per-EMT gaps).
    if voltages is not None:
        all_voltages = sorted({float(v) for v in voltages}, reverse=True)
    else:
        all_voltages = sorted(
            {v for grid in by_emt.values() for v in grid}, reverse=True
        )

    v_nominal = all_voltages[0]
    baseline_row = by_emt.get(baseline_emt, {}).get(v_nominal)
    if baseline_row is None:
        raise CampaignError(
            f"baseline {baseline_emt!r} has no row at {v_nominal} V"
        )
    baseline_energy = baseline_row["energy_pj"]
    reference_snr = max(
        grid[v_nominal]["snr_db"]
        for grid in by_emt.values()
        if v_nominal in grid
    )
    min_snr = reference_snr - tolerance_db
    points = []
    for emt_name, grid in by_emt.items():
        safe: dict | None = None
        for voltage in all_voltages:
            if voltage in grid and grid[voltage]["snr_db"] >= min_snr:
                safe = grid[voltage]
            else:
                break
        if safe is None:
            continue
        points.append(
            OperatingPoint(
                emt_name=emt_name,
                v_min_safe=safe["voltage"],
                saving_vs_nominal=1.0 - safe["energy_pj"] / baseline_energy,
                snr_db=safe["snr_db"],
                energy_pj=safe["energy_pj"],
            )
        )
    points.sort(key=lambda p: (-p.v_min_safe, p.emt_name))
    return points
