"""Command-line interface: regenerate any of the paper's artefacts.

Usage (installed as a module)::

    python -m repro fig2 --apps dwt,morphology
    python -m repro fig4 --runs 25 --apps dwt --workers 4
    python -m repro energy
    python -m repro tradeoff --tolerance 5
    python -m repro overheads
    python -m repro record 106 --duration 10
    python -m repro lifetime --voltage 0.65 --emt dream
    python -m repro sweep --apps dwt --workers 4
    python -m repro mission --scenario active_day
    python -m repro cohort --size 500 --workers 4
    python -m repro cache --info

``mission`` runs the :mod:`repro.runtime` closed-loop simulator: a
scenario timeline streams through the application while each requested
operating-point policy picks a (voltage, EMT) rung per window, and the
report compares battery lifetime, mean/worst window quality and switch
counts across policies.

``cohort`` scales ``mission`` to a population: a synthetic patient
cohort (:mod:`repro.cohort`) fans out over worker processes, every
calibration is shared fleet-wide through the disk cache, and the report
compares *population* statistics — battery-survival curves, quality
percentile bands and the tail-statistic Pareto frontier — across
policies.  ``cache`` inspects or clears that shared calibration cache.

``sweep`` runs a voltage x EMT x application design-space-exploration
campaign through :mod:`repro.campaign`: the grid fans out across a
worker pool, every point's result is cached in a JSONL store under
``benchmarks/results/campaigns/`` (re-running resumes, executing only
missing points), and the stored results are reduced to an energy-vs-
quality Pareto frontier plus the Section VI-C operating points.

Global options come before the subcommand: ``--seed`` fixes the master
Monte-Carlo seed of every experiment, so any artefact is reproducible
from the command line (``python -m repro --seed 7 fig4 ...``).

Every subcommand prints the same ASCII tables the benchmark harness
writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from . import __version__
from .energy.technology import PAPER_VOLTAGE_GRID
from .errors import ReproError

__all__ = ["main", "build_parser"]

PAPER_APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)


def _csv(raw: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def _csv_floats(raw: str) -> tuple[float, ...]:
    return tuple(float(item) for item in _csv(raw))


def _experiment_config(args, **extra):
    """Build an ExperimentConfig honouring the global ``--seed``."""
    from .exp.common import ExperimentConfig

    kwargs = dict(records=args.records, duration_s=args.duration, **extra)
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return ExperimentConfig(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy vs. Reliability Trade-offs "
            "Exploration in Biomedical Ultra-Low Power Devices' "
            "(Duch et al., DATE 2016)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="master Monte-Carlo seed (default: the library's fixed seed); "
             "place before the subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--records", type=_csv, default=("100", "106"),
        help="comma-separated record names (default: 100,106)",
    )
    common.add_argument(
        "--duration", type=float, default=8.0,
        help="seconds of each record to process (default: 8)",
    )

    def add_workers(sub_parser, default: int) -> None:
        # Not part of `common`: parents share action objects, so a
        # per-subcommand default would leak across all of them.
        sub_parser.add_argument(
            "--workers", type=int, default=default,
            help=f"worker processes for the grid (default: {default})",
        )

    fig2 = sub.add_parser(
        "fig2", parents=[common],
        help="Fig 2: SNR vs bit position of injected stuck-at errors",
    )
    fig2.add_argument(
        "--apps", type=_csv, default=PAPER_APP_NAMES,
        help="comma-separated application names",
    )
    add_workers(fig2, default=1)

    fig4 = sub.add_parser(
        "fig4", parents=[common],
        help="Fig 4a/b/c: SNR vs supply voltage per EMT",
    )
    fig4.add_argument("--apps", type=_csv, default=PAPER_APP_NAMES)
    fig4.add_argument(
        "--runs", type=int, default=12,
        help="Monte-Carlo runs per grid point (paper: 200)",
    )
    fig4.add_argument(
        "--emts", type=_csv, default=("none", "dream", "secded"),
        help="EMT registry names to sweep",
    )
    add_workers(fig4, default=1)

    sub.add_parser("energy", help="Section VI-B energy/area analysis")

    tradeoff = sub.add_parser(
        "tradeoff", parents=[common],
        help="Section VI-C voltage/quality trade-off for one app",
    )
    tradeoff.add_argument("--app", default="dwt")
    tradeoff.add_argument("--runs", type=int, default=12)
    tradeoff.add_argument(
        "--tolerance", type=float, default=1.0,
        help="allowed output degradation in dB (paper: 1)",
    )
    add_workers(tradeoff, default=1)

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="parallel voltage x EMT x app campaign with resume, "
             "Pareto frontier and VI-C extraction",
    )
    sweep.add_argument(
        "--apps", type=_csv, default=("dwt",),
        help="applications to sweep (default: dwt)",
    )
    sweep.add_argument(
        "--emts", type=_csv, default=("none", "dream", "secded"),
        help="EMT registry names to sweep",
    )
    sweep.add_argument(
        "--voltages", type=_csv_floats, default=PAPER_VOLTAGE_GRID,
        help="comma-separated supply voltages (default: the paper grid)",
    )
    sweep.add_argument(
        "--runs", type=int, default=6,
        help="Monte-Carlo runs per grid point (paper: 200)",
    )
    sweep.add_argument(
        "--tolerance", type=float, default=5.0,
        help="quality tolerance for the operating-point extraction (dB)",
    )
    sweep.add_argument(
        "--name", default="sweep",
        help="campaign name; the result store is <store-dir>/<name>-*.jsonl",
    )
    sweep.add_argument(
        "--store-dir", default=None,
        help="result-store directory (default: benchmarks/results/campaigns "
             "or $REPRO_CAMPAIGN_DIR)",
    )
    sweep.add_argument(
        "--fresh", action="store_true",
        help="re-execute every point, superseding stored results",
    )
    add_workers(sweep, default=2)

    mission = sub.add_parser(
        "mission",
        help="closed-loop adaptive-runtime mission: compare operating-"
             "point policies on one scenario (lifetime, quality, switches)",
    )
    mission.add_argument(
        "--scenario", default="active_day",
        help="scenario registry name (see repro.runtime.scenarios; "
             "default: active_day)",
    )
    mission.add_argument(
        "--policies",
        type=_csv,
        default=("static-ladder", "quality", "soc", "hysteresis"),
        help="comma-separated policy tokens: registry names "
             "('quality', 'soc', 'hysteresis'), 'static:EMT@V' for one "
             "pinned rung, or 'static-ladder' for one static policy per "
             "lattice rung (default: static-ladder plus every adaptive "
             "policy)",
    )
    mission.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="scale every segment duration AND the battery capacity "
             "(e.g. 0.1 for a quick look; reported lifetimes shrink by "
             "the same factor, policy orderings are preserved)",
    )
    mission.add_argument(
        "--window", type=float, default=None,
        help="override the scenario's processing window (seconds)",
    )
    mission.add_argument(
        "--probe-runs", type=int, default=3,
        help="fault-injection probes per calibrated quality model",
    )
    mission.add_argument(
        "--probe-duration", type=float, default=4.0,
        help="seconds of segment signal per calibration probe",
    )

    cohort = sub.add_parser(
        "cohort",
        help="population fleet simulation: survival curves, quality "
             "bands and tail-statistic Pareto frontier per policy",
    )
    cohort.add_argument(
        "--size", type=int, default=200,
        help="number of synthetic patients (default: 200)",
    )
    cohort.add_argument(
        "--policies", type=_csv, default=("static", "soc", "hysteresis"),
        help="comma-separated policy tokens (registry names or "
             "'static:EMT@V'; default: static,soc,hysteresis)",
    )
    cohort.add_argument(
        "--scenarios", default="active_day:0.7,overnight:0.3",
        help="scenario mix as name:weight pairs "
             "(default: active_day:0.7,overnight:0.3)",
    )
    cohort.add_argument(
        "--pathology", default=None,
        help="record mix as name:weight pairs (default: the "
             "PatientModel mix; e.g. '100:0.6,119:0.4' for a PVC-heavy "
             "ward)",
    )
    cohort.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="scale each patient's timeline AND battery (e.g. 0.02 for "
             "a quick look; policy orderings are preserved)",
    )
    cohort.add_argument(
        "--name", default="cohort",
        help="cohort name (seeds patient draws; default: cohort)",
    )
    cohort.add_argument(
        "--probe-runs", type=int, default=3,
        help="fault-injection probes per calibrated quality model",
    )
    cohort.add_argument(
        "--probe-duration", type=float, default=4.0,
        help="seconds of segment signal per calibration probe",
    )
    add_workers(cohort, default=2)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the shared calibration cache "
             "(REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--info", action="store_true",
        help="print cache diagnostics (the default action)",
    )
    cache.add_argument(
        "--clear", action="store_true",
        help="delete every cached calibration entry",
    )

    sub.add_parser("overheads", help="Section V / Formula 2 bit overheads")

    record = sub.add_parser(
        "record", help="synthesise and describe one catalog record"
    )
    record.add_argument("name", help="record name, e.g. 106")
    record.add_argument("--duration", type=float, default=10.0)

    lifetime = sub.add_parser(
        "lifetime",
        help="battery-lifetime estimate for a monitoring node",
    )
    lifetime.add_argument("--voltage", type=float, default=0.65)
    lifetime.add_argument("--emt", default="dream")
    lifetime.add_argument(
        "--capacity-mah", type=float, default=230.0,
        help="battery capacity (default: CR2032-class, 230 mAh)",
    )
    return parser


def _cmd_fig2(args) -> int:
    from .exp.fig2 import run_fig2
    from .exp.report import format_fig2

    config = _experiment_config(args)
    print(format_fig2(
        run_fig2(app_names=args.apps, config=config, n_workers=args.workers)
    ))
    return 0


def _cmd_fig4(args) -> int:
    from .exp.fig4 import run_fig4
    from .exp.report import format_fig4

    config = _experiment_config(args, n_runs=args.runs)
    result = run_fig4(
        app_names=args.apps, emt_names=args.emts, config=config,
        n_workers=args.workers,
    )
    for emt_name in args.emts:
        print(format_fig4(result, emt_name))
        print()
    return 0


def _cmd_energy(args) -> int:
    from .exp.energy_table import run_energy_analysis
    from .exp.report import format_energy_analysis

    print(format_energy_analysis(run_energy_analysis()))
    return 0


def _cmd_tradeoff(args) -> int:
    from .exp.fig4 import run_fig4
    from .exp.report import format_paper_example, format_tradeoff
    from .exp.tradeoff import paper_example_savings, run_tradeoff

    config = _experiment_config(args, n_runs=args.runs)
    fig4 = run_fig4(
        app_names=(args.app,), config=config, n_workers=args.workers
    )
    result = run_tradeoff(
        fig4, app_name=args.app, tolerance_db=args.tolerance
    )
    print(format_tradeoff(result))
    print()
    print(format_paper_example(paper_example_savings()))
    return 0


def _cmd_sweep(args) -> int:
    from .campaign.analysis import extract_tradeoff, pareto_frontier, quality_energy_rows
    from .campaign.runner import run_campaign
    from .campaign.spec import CampaignSpec
    from .campaign.store import ResultStore
    from .errors import CampaignError, ExperimentError
    from .exp.fig4 import fig4_spec
    from .exp.report import (
        format_frontier,
        format_operating_points,
        format_paper_example,
    )
    from .exp.tradeoff import paper_example_savings

    if "none" not in args.emts:
        # Fail before the (possibly hours-long) campaign: the frontier
        # savings and operating points are measured against this baseline.
        raise ExperimentError(
            "the baseline 'none' must be included in --emts"
        )
    config = _experiment_config(args, n_runs=args.runs)
    quality_spec = fig4_spec(
        app_names=args.apps,
        emt_names=args.emts,
        voltages=args.voltages,
        config=config,
        name=f"{args.name}-quality",
    )
    # The workload (and therefore the energy of an operating point) is
    # application-specific: one energy spec per app, so a point's content
    # hash is independent of the rest of the --apps list and stored
    # energy results survive app-list changes.  Points carry only the
    # workload's (app, record, duration) identity — workers measure it
    # on demand with a per-process cache — so a fully-cached resume runs
    # no application at all, and a cold run measures at most once per
    # worker process.
    energy_specs = [
        CampaignSpec(
            name=f"{args.name}-energy",
            kind="energy",
            axes={"emt": args.emts, "voltage": args.voltages},
            fixed={
                "workload_app": app,
                "workload_record": args.records[0],
                "workload_duration_s": args.duration,
            },
        )
        for app in args.apps
    ]

    def _progress(done: int, total: int, record: dict) -> None:
        status = record["status"]
        marker = "." if status == "ok" else "!"
        print(f"\r  [{done}/{total}] {marker}", end="", file=sys.stderr)

    def _run(spec: CampaignSpec):
        campaign = run_campaign(
            spec,
            store=ResultStore.for_campaign(spec.name, root=args.store_dir),
            n_workers=args.workers,
            progress=_progress,
            resume=not args.fresh,
        )
        print(file=sys.stderr)
        return campaign

    quality = _run(quality_spec)
    energy = [_run(spec) for spec in energy_specs]
    e_points = sum(len(c.records) for c in energy)
    e_executed = sum(c.n_executed for c in energy)
    e_cached = sum(c.n_cached for c in energy)
    e_failed = sum(c.n_failed for c in energy)

    print(f"campaign {args.name!r}: voltage x EMT x app grid, "
          f"{args.workers} workers")
    print(
        f"  {quality_spec.name}: {len(quality.records)} points — "
        f"{quality.n_executed} executed, {quality.n_cached} cached, "
        f"{quality.n_failed} failed"
    )
    print(
        f"  {args.name}-energy: {e_points} points — {e_executed} executed, "
        f"{e_cached} cached, {e_failed} failed"
    )
    n_failed = quality.n_failed + e_failed
    for campaign in (quality, *energy):
        for failure in campaign.failures():
            where = failure.get("coords", failure["params"])
            print(f"  failed: {where} -> {failure['error']}",
                  file=sys.stderr)

    records = quality.records + [
        rec for campaign in energy for rec in campaign.records
    ]
    for app_name in args.apps:
        rows = quality_energy_rows(records, app_name)
        print()
        try:
            frontier = pareto_frontier(rows, x_key="energy_pj", y_key="snr_db")
            points = extract_tradeoff(
                rows, tolerance_db=args.tolerance, voltages=args.voltages
            )
        except CampaignError as error:
            # A failed point can leave this app unanalysable (e.g. no
            # baseline at nominal supply); report and keep going so the
            # other apps still get their sections.
            print(f"[{app_name}] analysis skipped: {error}", file=sys.stderr)
            continue
        print(format_frontier(app_name, frontier))
        print(format_operating_points(app_name, points, args.tolerance))

    print()
    print(format_paper_example(paper_example_savings()))
    if n_failed:
        print(
            f"warning: {n_failed} grid points failed; results above are "
            "partial (failed points are retried on the next run)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_mission(args) -> int:
    from dataclasses import replace

    from .exp.report import format_mission
    from .runtime import MissionSimulator, StaticPolicy, policy_from_token
    from .runtime.scenarios import scenario_spec

    spec = scenario_spec(args.scenario)
    if args.duration_scale != 1.0:
        spec = spec.scaled(args.duration_scale)
    overrides = {}
    if args.window is not None:
        overrides["window_s"] = args.window
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = replace(spec, **overrides)

    simulator = MissionSimulator(
        spec,
        n_probe=args.probe_runs,
        probe_duration_s=args.probe_duration,
    )
    hours = spec.total_duration_s / 3600.0
    print(
        f"scenario {spec.name!r}: {hours:.1f} h, {spec.n_windows} windows "
        f"of {spec.window_s:g} s, app {spec.app!r}, "
        f"{spec.battery.capacity_mah:g} mAh cell"
    )
    print("timeline: " + ", ".join(
        f"{seg.name} {seg.duration_s / 3600.0:.1f}h"
        + (f" (stress {seg.stress:g})" if seg.stress else "")
        for seg in spec.segments
    ))
    print("ladder:   " + ", ".join(
        f"{p.label} {p.energy_per_window_pj / 1e6:.1f} uJ/window"
        for p in simulator.ladder
    ))
    print()

    policies = []
    for token in args.policies:
        if token == "static-ladder":
            policies.extend(
                StaticPolicy(index=i) for i in range(len(simulator.ladder))
            )
        else:
            policies.append(policy_from_token(token))
    results = [simulator.run(policy) for policy in policies]
    print(format_mission(spec.name, results))
    return 0


def _parse_mix(raw: str, value_type=str) -> tuple:
    """Parse a ``name:weight,name:weight`` mix argument."""
    from .errors import CohortError

    pairs = []
    for token in _csv(raw):
        name, sep, weight = token.partition(":")
        if not sep:
            raise CohortError(
                f"mix entries are 'name:weight', got {token!r}"
            )
        try:
            pairs.append((value_type(name.strip()), float(weight)))
        except ValueError as exc:
            raise CohortError(f"bad mix entry {token!r}: {exc}") from exc
    return tuple(pairs)


def _cmd_cohort(args) -> int:
    from dataclasses import replace

    from .cohort import (
        CohortSpec,
        FleetSimulator,
        PatientModel,
        population_frontier,
        survival_curve,
    )
    from .exp.report import format_fleet, format_survival

    model = PatientModel(scenario_mix=_parse_mix(args.scenarios))
    if args.pathology:
        model = replace(model, record_mix=_parse_mix(args.pathology))
    spec = CohortSpec(
        name=args.name,
        size=args.size,
        model=model,
        duration_scale=args.duration_scale,
        seed=args.seed if getattr(args, "seed", None) is not None else 2016,
    )
    fleet = FleetSimulator(
        spec,
        n_probe=args.probe_runs,
        probe_duration_s=args.probe_duration,
    )
    print(
        f"cohort {spec.name!r}: {spec.size} patients, scenarios "
        f"{args.scenarios}, duration scale {spec.duration_scale:g}, "
        f"{args.workers} workers"
    )

    def _progress(done: int, total: int, row: dict) -> None:
        marker = "." if row["status"] == "ok" else "!"
        print(f"\r  [{done}/{total}] {marker}", end="", file=sys.stderr)

    results = []
    for token in args.policies:
        from .runtime import policy_from_token

        # Validate the token up front (clear error before a long run),
        # then ship the JSON-safe payload to the workers.
        policy_from_token(token)
        payload = _policy_payload(token)
        result = fleet.run(
            payload, n_workers=args.workers, progress=_progress
        )
        print(file=sys.stderr)
        results.append(result)

    summaries = [result.summary() for result in results]
    print()
    print(format_fleet(spec.name, summaries))
    n_failed = 0
    for result in results:
        ok = result.ok_rows()
        if ok:
            print()
            print(format_survival(
                result.summary()["policy"],
                survival_curve(ok, n_points=9),
            ))
        for failure in result.failures():
            n_failed += 1
            print(
                f"  failed: patient {failure['patient']} -> "
                f"{failure['error']}",
                file=sys.stderr,
            )
    scored = [s for s in summaries if "survival_fraction" in s]
    if scored:
        frontier = population_frontier(scored)
        print()
        print("population Pareto frontier "
              "(p5 lifetime vs p10 worst-window quality):")
        for s in frontier:
            print(
                f"  {s['policy']:>24s}  p5 {s['lifetime_p5_days']:6.2f} d  "
                f"p10 {s['quality_p10_db']:6.1f} dB"
            )
    if n_failed:
        print(
            f"warning: {n_failed} patients failed; population statistics "
            "above exclude them",
            file=sys.stderr,
        )
        return 1
    return 0


def _policy_payload(token: str) -> str | dict:
    """The JSON-safe campaign form of a CLI policy token."""
    name, _, arg = token.partition(":")
    if not arg:
        return name.strip()
    emt_name, _, voltage = arg.partition("@")
    return {
        "name": name.strip(),
        "params": {"emt": emt_name.strip(), "voltage": float(voltage)},
    }


def _cmd_cache(args) -> int:
    from .cache import shared_cache

    cache = shared_cache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached calibrations from {cache.root}")
        return 0
    info = cache.info()
    print(f"calibration cache at {info['root']}")
    print(f"  persistent: {info['persistent']}")
    print(f"  entries:    {info['entries']}")
    print(f"  size:       {info['size_bytes']} bytes")
    stats = info["process"]
    print(
        f"  this process: {stats['memory_hits']} memory hits, "
        f"{stats['disk_hits']} disk hits, {stats['computed']} computed"
    )
    return 0


def _cmd_overheads(args) -> int:
    from .exp.overheads import overhead_table
    from .exp.report import format_overheads

    print(format_overheads(overhead_table()))
    return 0


def _cmd_record(args) -> int:
    from .signals.dataset import load_record

    record = load_record(args.name, duration_s=args.duration)
    labels = "".join(record.labels)
    print(f"record {record.name}: {record.duration_s:.1f} s @ "
          f"{record.fs_hz:.0f} Hz, {len(record.samples)} samples")
    print(f"  beats: {len(record.labels)}  rhythm: {labels}")
    print(f"  sample range: [{int(record.samples.min())}, "
          f"{int(record.samples.max())}]")
    return 0


def _cmd_lifetime(args) -> int:
    from .emt import make_emt
    from .energy.battery import BatteryModel, estimate_lifetime
    from .energy.technology import TECH_32NM_LP
    from .exp.energy_table import measure_workload

    battery = BatteryModel(capacity_mah=args.capacity_mah)
    workload = measure_workload("dwt")
    print(f"{args.capacity_mah:.0f} mAh battery, DWT monitoring workload")
    print(f"{'configuration':>24s} {'power':>10s} {'lifetime':>10s}")
    rows = [("none", TECH_32NM_LP.v_nominal), (args.emt, args.voltage)]
    for emt_name, voltage in rows:
        estimate = estimate_lifetime(
            make_emt(emt_name), voltage, battery, workload=workload
        )
        print(
            f"{emt_name + f' @ {voltage:.2f} V':>24s} "
            f"{estimate.average_power_uw:8.2f}uW "
            f"{estimate.lifetime_days:8.0f} d"
        )
    return 0


_HANDLERS = {
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "energy": _cmd_energy,
    "tradeoff": _cmd_tradeoff,
    "overheads": _cmd_overheads,
    "record": _cmd_record,
    "lifetime": _cmd_lifetime,
    "sweep": _cmd_sweep,
    "mission": _cmd_mission,
    "cohort": _cmd_cohort,
    "cache": _cmd_cache,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
