"""BatchCalibrator: bit-identical models, unchanged cache keys.

The calibrator replaced the mission simulator's per-probe loop with the
trial-batched pipeline; these tests pin the two properties that protect
every previously-cached calibration:

* the (mean, std) quality model is *exactly* what the sequential loop
  computed from the same seeds, and
* the shared disk cache's content-hash keys never see the batching —
  the payload schema (and therefore every digest) is unchanged.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.campaign.spec import content_hash
from repro.errors import MissionError
from repro.runtime.simulator import (
    BatchCalibrator,
    _calibrated_quality,
    _probe_quality,
)
from repro.signals.metrics import SNR_CAP_DB


class TestBitIdentical:
    @pytest.mark.parametrize("emt_name", ["none", "dream", "secded", "dream_secded"])
    @pytest.mark.parametrize("ber", [0.0, 1e-4, 3e-3])
    def test_batched_equals_sequential(self, emt_name, ber):
        calibrator = BatchCalibrator(n_probe=3, probe_duration_s=2.0)
        batched = calibrator.calibrate("dwt", "100", 1.0, emt_name, ber)
        sequential = calibrator.calibrate_sequential(
            "dwt", "100", 1.0, emt_name, ber
        )
        assert batched == sequential

    def test_single_probe_batch(self):
        calibrator = BatchCalibrator(n_probe=1, probe_duration_s=2.0)
        assert calibrator.calibrate(
            "dwt", "100", 1.0, "dream", 2e-3
        ) == calibrator.calibrate_sequential(
            "dwt", "100", 1.0, "dream", 2e-3
        )

    def test_fallback_app_batches_identically(self):
        """Delineation has no vectorised batch path; the per-trial
        fallback must still match the sequential loop exactly."""
        calibrator = BatchCalibrator(n_probe=2, probe_duration_s=2.0)
        assert calibrator.calibrate(
            "delineation", "100", 1.0, "dream", 2e-3
        ) == calibrator.calibrate_sequential(
            "delineation", "100", 1.0, "dream", 2e-3
        )

    def test_probe_quality_delegates_to_batched(self):
        calibrator = BatchCalibrator(
            n_probe=2, probe_duration_s=2.0, snr_cap_db=SNR_CAP_DB
        )
        assert _probe_quality(
            "dwt", "100", 1.0, "none", 1e-3, 2, 2.0, SNR_CAP_DB
        ) == calibrator.calibrate("dwt", "100", 1.0, "none", 1e-3)

    def test_rejects_bad_fidelity_knobs(self):
        with pytest.raises(MissionError):
            BatchCalibrator(n_probe=0)
        with pytest.raises(MissionError):
            BatchCalibrator(probe_duration_s=0.0)


class TestCacheKeysUnchanged:
    def test_disk_entry_uses_the_historical_payload_schema(
        self, tmp_path, monkeypatch
    ):
        """The batched calibrator writes cache entries under the exact
        digest the sequential implementation's payload produced."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
        _calibrated_quality.cache_clear()

        args = dict(
            app_name="dwt",
            record="100",
            noise_gain=1.0,
            emt_name="dream",
            ber=2e-3,
            n_probe=2,
            probe_duration_s=2.0,
            snr_cap_db=SNR_CAP_DB,
        )
        mean, std = _calibrated_quality(*args.values())

        # The historical (pre-batching) cache payload, verbatim.
        payload = {
            "kind": "mission-quality",
            "v": 1,
            "app": args["app_name"],
            "record": args["record"],
            "noise_gain": args["noise_gain"],
            "emt": args["emt_name"],
            "ber": args["ber"],
            "n_probe": args["n_probe"],
            "probe_duration_s": args["probe_duration_s"],
            "snr_cap_db": args["snr_cap_db"],
        }
        digest = content_hash(payload)
        entry = tmp_path / f"{digest}.json"
        assert entry.exists(), sorted(os.listdir(tmp_path))

        # And the cached value is the batched == sequential model.
        calibrator = BatchCalibrator(n_probe=2, probe_duration_s=2.0)
        assert (mean, std) == calibrator.calibrate_sequential(
            "dwt", "100", 1.0, "dream", 2e-3
        )
        _calibrated_quality.cache_clear()

    def test_model_values_are_plain_floats(self):
        calibrator = BatchCalibrator(n_probe=2, probe_duration_s=2.0)
        mean, std = calibrator.calibrate("dwt", "100", 1.0, "none", 0.0)
        assert isinstance(mean, float) and isinstance(std, float)
        assert (mean, std) == (SNR_CAP_DB, 0.0)

    def test_mission_simulator_results_unchanged_by_batching(self):
        """End to end: a short mission's result equals a run whose
        calibrations were produced by the sequential reference."""
        from repro.runtime import MissionSimulator, make_policy
        from repro.runtime.scenarios import scenario_spec

        np.random.default_rng(0)
        sim = MissionSimulator(
            scenario_spec("overnight").scaled(0.01),
            n_probe=2,
            probe_duration_s=2.0,
        )
        result = sim.run(make_policy("hysteresis"))
        # Deterministic: the same mission re-runs to the same result.
        again = sim.run(make_policy("hysteresis"))
        assert result.to_dict() == again.to_dict()
