"""Output-quality metrics, including the paper's SNR definition.

The paper measures output degradation with the Signal-to-Noise Ratio of
Formula 1:

    SNR = 20 * log10( sqrt(mean(x_theo^2)) / sqrt(MSE) )

where ``MSE`` is the mean squared difference between the error-free
("theoretical") output and the corrupted ("experimental") output.  An
error-free run has ``MSE = 0`` and therefore an unbounded SNR; the
experiment drivers cap it at a configurable ceiling so averages stay
finite, mirroring the dashed "maximum SNR" lines of Fig 4.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError

__all__ = ["mse", "rms", "snr_db", "snr_db_batch", "prd", "SNR_CAP_DB"]


#: Default SNR ceiling used when the corrupted output is bit-exact.
#: ~96 dB is the quantisation-noise-limited SNR of a 16-bit word
#: (6.02 dB/bit), the natural "no degradation" level for this system.
SNR_CAP_DB = 96.0


def _as_float_pair(
    theoretical: np.ndarray, experimental: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    theo = np.asarray(theoretical, dtype=np.float64).ravel()
    expe = np.asarray(experimental, dtype=np.float64).ravel()
    if theo.shape != expe.shape:
        raise SignalError(
            f"shape mismatch: theoretical {theo.shape} vs experimental {expe.shape}"
        )
    if theo.size == 0:
        raise SignalError("metrics require at least one sample")
    return theo, expe


def mse(theoretical: np.ndarray, experimental: np.ndarray) -> float:
    """Mean squared error between error-free and corrupted outputs."""
    theo, expe = _as_float_pair(theoretical, experimental)
    return float(np.mean((theo - expe) ** 2))


def rms(values: np.ndarray) -> float:
    """Root-mean-square of a signal."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise SignalError("rms requires at least one sample")
    return float(np.sqrt(np.mean(arr**2)))


def snr_db(
    theoretical: np.ndarray,
    experimental: np.ndarray,
    cap_db: float = SNR_CAP_DB,
) -> float:
    """The paper's Formula 1 SNR in decibels.

    Args:
        theoretical: error-free output ``x_theo``.
        experimental: corrupted output ``x_exp``.
        cap_db: ceiling returned when MSE is zero (bit-exact output) or
            when the computed SNR exceeds it.  Pass ``np.inf`` to disable.

    Returns:
        ``min(cap_db, 20*log10(rms(x_theo)/sqrt(MSE)))``.  If the
        theoretical output itself is identically zero the SNR is undefined
        and ``0.0`` is returned for a corrupted output, ``cap_db`` for a
        bit-exact one.
    """
    theo, expe = _as_float_pair(theoretical, experimental)
    error_power = float(np.mean((theo - expe) ** 2))
    signal_rms = float(np.sqrt(np.mean(theo**2)))
    if error_power == 0.0:
        return float(cap_db)
    if signal_rms == 0.0:
        return 0.0
    value = 20.0 * np.log10(signal_rms / np.sqrt(error_power))
    return float(min(value, cap_db))


def snr_db_batch(
    theoretical: np.ndarray,
    experimental: np.ndarray,
    cap_db: float = SNR_CAP_DB,
) -> np.ndarray:
    """Formula 1 SNR of a whole trial batch in one vectorised pass.

    Args:
        theoretical: the error-free output — ``(k,)`` for one stream, or
            ``(n_streams, k)`` when the batch covers a stacked corpus
            (one reference per stream).
        experimental: stacked corrupted outputs whose trailing axes
            match ``theoretical`` — e.g. ``(n_trials, k)`` or
            ``(n_trials, n_streams, k)``.
        cap_db: same ceiling semantics as :func:`snr_db`.

    Returns:
        float64 array of ``experimental``'s leading shape; every entry
        is bit-identical to :func:`snr_db` on the corresponding pair —
        the mean reduces along the same (last) axis in the same order,
        and the zero-MSE / zero-reference special cases follow the same
        rules (property-tested).
    """
    theo = np.asarray(theoretical, dtype=np.float64)
    expe = np.asarray(experimental, dtype=np.float64)
    if theo.size == 0:
        raise SignalError("metrics require at least one sample")
    if (
        expe.ndim <= theo.ndim
        or expe.shape[-theo.ndim :] != theo.shape
    ):
        raise SignalError(
            f"batch shape {expe.shape} does not stack references of "
            f"shape {theo.shape}"
        )
    error_power = np.mean((theo - expe) ** 2, axis=-1)
    signal_rms = np.sqrt(np.mean(theo**2, axis=-1))
    exact = error_power == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        value = 20.0 * np.log10(signal_rms / np.sqrt(error_power))
        capped = np.minimum(value, cap_db)
    result = np.where(signal_rms == 0.0, 0.0, capped)
    return np.where(exact, float(cap_db), result)


def prd(theoretical: np.ndarray, experimental: np.ndarray) -> float:
    """Percentage root-mean-square difference, the classic ECG metric.

    ``PRD = 100 * sqrt(sum((x-y)^2) / sum(x^2))``.  Related to the paper's
    SNR by ``SNR = 20*log10(100/PRD)``; provided because the CS literature
    the paper cites ([10], [11]) reports reconstruction quality as PRD.
    """
    theo, expe = _as_float_pair(theoretical, experimental)
    denom = float(np.sum(theo**2))
    if denom == 0.0:
        raise SignalError("PRD undefined for an all-zero reference")
    return float(100.0 * np.sqrt(np.sum((theo - expe) ** 2) / denom))
