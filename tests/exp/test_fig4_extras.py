"""Additional Fig 4 driver behaviours: extended EMT sets, contiguity."""

from __future__ import annotations

import pytest

from repro.exp.common import ExperimentConfig, MonteCarloResult
from repro.exp.fig4 import Fig4Result, run_fig4

FAST = ExperimentConfig(records=("100",), duration_s=3.0, n_runs=2)


class TestExtendedEmtSet:
    def test_sweep_with_multi_error_emt(self):
        """The registry extension slots straight into the Fig 4 driver."""
        result = run_fig4(
            app_names=("morphology",),
            emt_names=("none", "dream", "secded", "dream_secded"),
            config=FAST,
            voltages=(0.5, 0.9),
        )
        point = result.points["morphology"][0.5]
        assert set(point.snr_mean_db) == {
            "none", "dream", "secded", "dream_secded",
        }
        # The composition dominates everything at the deep end.
        best = max(point.snr_mean_db, key=point.snr_mean_db.get)
        assert best == "dream_secded"


class TestMinVoltageContiguity:
    def make_result(self, series: dict[float, float]) -> Fig4Result:
        result = Fig4Result(voltages=sorted(series))
        result.points["app"] = {
            v: MonteCarloResult(
                snr_mean_db={"none": snr}, snr_std_db={"none": 0.0}, n_runs=1
            )
            for v, snr in series.items()
        }
        return result

    def test_contiguous_descent(self):
        result = self.make_result({0.9: 96.0, 0.8: 96.0, 0.7: 50.0})
        assert result.min_voltage_meeting("app", "none", 90.0) == 0.8

    def test_recovery_by_chance_does_not_extend(self):
        """A lower voltage that recovers (by MC luck) must not extend
        the safe range across a failing gap."""
        result = self.make_result({0.9: 96.0, 0.8: 50.0, 0.7: 96.0})
        assert result.min_voltage_meeting("app", "none", 90.0) == 0.9

    def test_nothing_meets(self):
        result = self.make_result({0.9: 10.0, 0.8: 5.0})
        assert result.min_voltage_meeting("app", "none", 90.0) is None

    def test_series_roundtrip(self):
        result = self.make_result({0.9: 96.0, 0.8: 50.0})
        assert result.series("app", "none") == [50.0, 96.0]
