"""Documentation contract: public API is documented and examples run.

Three guarantees:

1. every public module, class and function in the package carries a
   docstring (deliverable (e): "doc comments on every public item");
2. every ``>>>`` example embedded in a docstring actually executes and
   produces the shown output (doctest);
3. every script in ``examples/`` is documented and at least compiles,
   and the README actually covers the shipped CLI surface.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCTEST_MODULES = [
    "repro._bitops",
    "repro.fixedpoint",
    "repro.emt.dream",
    "repro.emt.secded",
    "repro.emt.dream_secded",
    "repro.emt.hybrid",
    "repro.mem.sram",
    "repro.mem.fabric",
    "repro.energy.sram_model",
    "repro.energy.accounting",
    "repro.energy.battery",
    "repro.apps.dwt",
    "repro.runtime.simulator",
    "repro.cache",
    "repro.cohort.population",
    "repro.cohort.fleet",
    "repro.api.session",
    "repro.obs.core",
]


def all_public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if not leaf.startswith("_"):
            names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", all_public_modules())
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", all_public_modules())
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if item.__module__ != module_name:
                continue  # re-export; documented at its home module
            if not inspect.getdoc(item):
                undocumented.append(name)
            elif inspect.isclass(item):
                for method_name, method in vars(item).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_execute(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures"
    assert result.attempted > 0 or module_name == "repro.fixedpoint"


def all_example_scripts():
    return sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize(
    "script", all_example_scripts(), ids=lambda path: path.name
)
def test_example_documented_and_compiles(script):
    source = script.read_text(encoding="utf-8")
    code = compile(source, str(script), "exec")
    assert code.co_consts and isinstance(code.co_consts[0], str), (
        f"{script.name} lacks a module docstring"
    )


def test_shipped_walkthroughs_exist():
    names = {path.name for path in all_example_scripts()}
    assert "adaptive_mission.py" in names
    assert "cohort_fleet.py" in names


class TestReadmeCoverage:
    """The README documents what actually ships."""

    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text(encoding="utf-8")

    def test_covers_every_cli_subcommand(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        for command in subparsers.choices:
            assert command in readme, (
                f"README does not mention the {command!r} subcommand"
            )

    def test_cohort_walkthrough_present(self, readme):
        assert "repro cohort" in readme
        assert "survival_curve" in readme
        assert "population_frontier" in readme
        assert "examples/cohort_fleet.py" in readme
        assert "bench_cohort.py" in readme
