"""The versioned Experiment schema: defaults, validation, round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import serde
from repro.api.schema import (
    SCHEMA_VERSION,
    CohortParams,
    EnergyParams,
    Experiment,
    Fig2Params,
    Fig4Params,
    MissionParams,
    SweepParams,
    TradeoffParams,
    dump_experiment,
    experiment_from_payload,
    load_experiment,
)
from repro.cli import build_parser
from repro.errors import ExperimentSpecError


def _exp(kind: str, section: dict, **top) -> Experiment:
    payload = {"version": 1, "kind": kind, "name": f"{kind}-t", **top,
               kind: section}
    return experiment_from_payload(payload)


class TestVersioning:
    def test_missing_version_rejected(self):
        with pytest.raises(ExperimentSpecError, match="version"):
            experiment_from_payload({"kind": "sweep", "name": "x", "sweep": {}})

    def test_unknown_version_rejected_with_clear_error(self):
        with pytest.raises(
            ExperimentSpecError,
            match=f"version 99; this build supports version {SCHEMA_VERSION}",
        ):
            experiment_from_payload(
                {"version": 99, "kind": "sweep", "name": "x", "sweep": {}}
            )

    def test_direct_construction_checks_version_too(self):
        with pytest.raises(ExperimentSpecError, match="version"):
            Experiment(name="x", kind="sweep", params=SweepParams(), version=2)


class TestStructuralValidation:
    def test_unknown_kind(self):
        with pytest.raises(ExperimentSpecError, match="unknown experiment kind"):
            experiment_from_payload(
                {"version": 1, "kind": "bench", "name": "x", "bench": {}}
            )

    def test_missing_name(self):
        with pytest.raises(ExperimentSpecError, match="'name'"):
            experiment_from_payload({"version": 1, "kind": "sweep", "sweep": {}})

    def test_missing_section(self):
        with pytest.raises(ExperimentSpecError, match=r"\[sweep\] section"):
            experiment_from_payload(
                {"version": 1, "kind": "sweep", "name": "x"}
            )

    def test_unknown_top_level_key(self):
        with pytest.raises(ExperimentSpecError, match="threads"):
            experiment_from_payload(
                {"version": 1, "kind": "sweep", "name": "x", "threads": 4,
                 "sweep": {}}
            )

    def test_unknown_section_key_lists_allowed(self):
        with pytest.raises(ExperimentSpecError, match="allowed"):
            _exp("mission", {"scenari": "overnight"})

    def test_figure_requires_figure_key(self):
        with pytest.raises(ExperimentSpecError, match="'figure' key"):
            _exp("figure", {"apps": ["dwt"]})

    def test_unknown_figure(self):
        with pytest.raises(ExperimentSpecError, match="unknown figure"):
            _exp("figure", {"figure": "fig9"})

    def test_per_figure_key_sets(self):
        # runs is a fig4 knob; fig2 is deterministic and must reject it.
        with pytest.raises(ExperimentSpecError, match="unknown keys"):
            _exp("figure", {"figure": "fig2", "runs": 5})

    def test_bad_value_types_are_located(self):
        with pytest.raises(ExperimentSpecError, match="sweep.runs"):
            _exp("sweep", {"runs": "many"})
        with pytest.raises(ExperimentSpecError, match="cohort.size"):
            _exp("cohort", {"size": 1.5})

    def test_store_and_name_must_be_path_safe(self):
        with pytest.raises(ExperimentSpecError, match="path-safe"):
            Experiment(name="a/b", kind="sweep", params=SweepParams())
        with pytest.raises(ExperimentSpecError, match="path-safe"):
            Experiment(
                name="a", kind="sweep", params=SweepParams(), store="x/y"
            )

    def test_workers_must_be_positive(self):
        with pytest.raises(ExperimentSpecError, match="workers"):
            Experiment(name="a", kind="sweep", params=SweepParams(), workers=0)

    def test_params_type_must_match_kind(self):
        with pytest.raises(ExperimentSpecError, match="needs params"):
            Experiment(name="a", kind="mission", params=SweepParams())

    def test_policy_mapping_needs_name(self):
        with pytest.raises(ExperimentSpecError, match="'name'"):
            _exp("mission", {"policies": [{"params": {}}]})


class TestDefaultsMatchTheLegacyCli:
    """A file with only the keys you care about reproduces the shims."""

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        params = SweepParams()
        assert params.apps == args.apps
        assert params.emts == args.emts
        assert params.voltages == args.voltages
        assert params.records == args.records
        assert params.duration_s == args.duration
        assert params.runs == args.runs
        assert params.tolerance_db == args.tolerance

    def test_mission_defaults(self):
        args = build_parser().parse_args(["mission"])
        params = MissionParams()
        assert params.scenario == args.scenario
        assert params.policies == args.policies
        assert params.duration_scale == args.duration_scale
        assert params.probe_runs == args.probe_runs
        assert params.probe_duration_s == args.probe_duration

    def test_cohort_defaults(self):
        args = build_parser().parse_args(["cohort"])
        params = CohortParams()
        assert params.size == args.size
        assert params.policies == args.policies
        assert serde.format_mix(params.scenarios) == args.scenarios

    def test_figure_defaults(self):
        fig4 = build_parser().parse_args(["fig4"])
        params = Fig4Params()
        assert params.apps == fig4.apps
        assert params.emts == fig4.emts
        assert params.runs == fig4.runs
        assert params.records == fig4.records
        assert params.duration_s == fig4.duration


class TestRoundTrips:
    CASES = [
        _exp("figure", {"figure": "fig2", "apps": ["dwt"]}),
        _exp("figure", {"figure": "fig4", "voltages": [0.55, 0.9],
                        "runs": 2}),
        _exp("figure", {"figure": "energy", "workload_app": "morphology"}),
        _exp("figure", {"figure": "tradeoff", "app": "dwt",
                        "tolerance_db": 2.5}),
        _exp("sweep", {"apps": ["dwt", "morphology"]},
             seed=7, workers=4, backend="multiprocessing", store="s"),
        _exp("mission", {
            "scenario": "overnight", "window_s": 4.0,
            "policies": ["static-ladder", "static:secded@0.65",
                         {"name": "hysteresis", "params": {"dwell": 3}}],
        }),
        _exp("cohort", {
            "size": 9, "scenarios": "pvc_ward:1.0",
            "pathology": [["106", 0.5], ["119", 0.5]],
            "environment": [[1.0, 0.5], [2.5, 0.5]],
            "shielding": [[1.0, 1.0]],
            "battery_cv": 0.2, "battery_clip": [0.6, 1.4],
        }),
    ]

    @pytest.mark.parametrize(
        "experiment", CASES,
        ids=lambda e: f"{e.kind}-{getattr(e.params, 'KIND', '')}",
    )
    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_dump_reload_is_bit_identical(self, experiment, suffix, tmp_path):
        path = tmp_path / f"exp{suffix}"
        dump_experiment(experiment, path)
        reloaded = load_experiment(path)
        assert reloaded == experiment
        assert reloaded.canonical_json() == experiment.canonical_json()
        assert reloaded.content_hash() == experiment.content_hash()

    def test_hash_is_format_independent(self, tmp_path):
        experiment = self.CASES[4]
        dump_experiment(experiment, tmp_path / "a.toml")
        dump_experiment(experiment, tmp_path / "b.json")
        assert (
            load_experiment(tmp_path / "a.toml").content_hash()
            == load_experiment(tmp_path / "b.json").content_hash()
        )

    def test_payload_equivalence_across_containers(self):
        """Tuples, lists and numpy arrays describe the same experiment."""
        literal = Experiment(
            name="np", kind="sweep",
            params=SweepParams(voltages=(0.5, 0.7, 0.9)),
        )
        numpy_built = Experiment(
            name="np", kind="sweep",
            params=SweepParams(
                voltages=tuple(np.linspace(0.5, 0.9, 3))
            ),
        )
        assert literal.canonical_json() == numpy_built.canonical_json()
        assert literal.content_hash() == numpy_built.content_hash()

    def test_numpy_values_in_payload_coerce(self):
        experiment = experiment_from_payload({
            "version": np.int64(1), "kind": "sweep", "name": "np",
            "seed": np.int64(7),
            "sweep": {"voltages": np.asarray([0.55, 0.9]),
                      "runs": np.int64(3)},
        })
        assert experiment.seed == 7
        assert experiment.params.voltages == (0.55, 0.9)
        assert experiment.params.runs == 3

    def test_mix_string_and_pair_forms_are_equivalent(self):
        a = _exp("cohort", {"scenarios": "active_day:0.7,overnight:0.3"})
        b = _exp("cohort", {"scenarios": [["active_day", 0.7],
                                          ["overnight", 0.3]]})
        assert a.canonical_json() == b.canonical_json()

    def test_with_seed(self):
        experiment = _exp("sweep", {})
        assert experiment.with_seed(None) is experiment
        assert experiment.with_seed(9).seed == 9

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("version = 99\n", encoding="utf-8")
        with pytest.raises(ExperimentSpecError, match="bad.toml"):
            load_experiment(path)


class TestParamsCoverage:
    def test_all_param_classes_expose_kind(self):
        for cls in (Fig2Params, Fig4Params, EnergyParams, TradeoffParams,
                    SweepParams, MissionParams, CohortParams):
            assert cls.KIND

    def test_energy_payload_keys(self):
        payload = EnergyParams().to_payload()
        assert payload["figure"] == "energy"
        assert payload["workload_app"] == "dwt"

    def test_battery_clip_must_be_a_pair(self):
        with pytest.raises(ExperimentSpecError, match="battery_clip"):
            _exp("cohort", {"battery_clip": [0.5, 1.0, 1.5]})
