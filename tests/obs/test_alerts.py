"""Alert rules: TOML validation, evaluation semantics, exit codes.

Evaluation runs against the committed mini-traces, whose metric values
are fixed — every firing / not-firing assertion here is by construction,
not by tolerance.  The CLI tests pin the CI contract: a breached
``error`` rule is exit 1 from both ``repro report`` and ``repro
watch``; warnings and satisfied rules are exit 0.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import load_rules, load_trace
from repro.obs.alerts import (
    AlertRule,
    breached,
    evaluate_rules,
    render_outcomes,
    rules_from_payload,
)

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def events_b():
    return load_trace(DATA / "mini_b.jsonl")


def write_rules(tmp_path, text: str) -> Path:
    path = tmp_path / "rules.toml"
    path.write_text(text, encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# Loading and validation
# --------------------------------------------------------------------------


def test_load_rules_round_trip(tmp_path):
    path = write_rules(
        tmp_path,
        """
        [[rule]]
        name = "quality-floor"
        metric = "fleet.quality_p10_db"
        min = 2.0
        attrs = { phenotype = "119" }
        description = "worst-decile SNR floor"

        [[rule]]
        name = "no-failures"
        metric = "campaign.points_failed"
        max = 0
        severity = "warning"
        require = true
        """,
    )
    rules = load_rules(path)
    assert [rule.name for rule in rules] == ["quality-floor", "no-failures"]
    assert rules[0].min == 2.0 and rules[0].max is None
    assert rules[0].attrs == {"phenotype": "119"}
    assert rules[1].severity == "warning" and rules[1].require


@pytest.mark.parametrize(
    ("payload", "message"),
    [
        ({}, "non-empty list"),
        ({"rule": [{"metric": "m", "min": 1}]}, "non-empty 'name'"),
        ({"rule": [{"name": "r", "min": 1}]}, "non-empty 'metric'"),
        ({"rule": [{"name": "r", "metric": "m"}]}, "'min' and/or 'max'"),
        (
            {"rule": [{"name": "r", "metric": "m", "min": "low"}]},
            "must be numeric",
        ),
        (
            {"rule": [{"name": "r", "metric": "m", "min": 2, "max": 1}]},
            "min > max",
        ),
        (
            {"rule": [{"name": "r", "metric": "m", "min": 1,
                       "severity": "fatal"}]},
            "severity",
        ),
        (
            {"rule": [{"name": "r", "metric": "m", "min": 1,
                       "threshold": 2}]},
            "unknown keys",
        ),
        (
            {"rule": [
                {"name": "r", "metric": "m", "min": 1},
                {"name": "r", "metric": "m", "max": 2},
            ]},
            "duplicate rule name",
        ),
    ],
)
def test_invalid_payloads_rejected(payload, message):
    with pytest.raises(ObsError, match=message):
        rules_from_payload(payload)


def test_load_rules_bad_toml(tmp_path):
    path = write_rules(tmp_path, "[[rule\nname=")
    with pytest.raises(ObsError, match="not valid TOML"):
        load_rules(path)


# --------------------------------------------------------------------------
# Evaluation semantics (values fixed by data/mini_b.jsonl)
# --------------------------------------------------------------------------


def outcome_of(rule: AlertRule, events) -> tuple[str, bool]:
    (outcome,) = evaluate_rules([rule], events)
    return outcome.status, outcome.fired


def test_floor_fires_on_worst_series(events_b):
    # quality_p10_db series: 3.0 (phenotype 100) and 1.5 (phenotype 119);
    # an unscoped floor of 2.0 is judged against the worst series.
    rule = AlertRule(name="floor", metric="fleet.quality_p10_db", min=2.0)
    (outcome,) = evaluate_rules([rule], events_b)
    assert outcome.status == "breached" and outcome.fired
    assert outcome.value == 1.5
    assert "over 2 series" in outcome.message


def test_attrs_scope_selects_one_series(events_b):
    ok_rule = AlertRule(
        name="floor-100", metric="fleet.quality_p10_db", min=2.0,
        attrs={"phenotype": "100"},
    )
    assert outcome_of(ok_rule, events_b) == ("ok", False)
    bad_rule = AlertRule(
        name="floor-119", metric="fleet.quality_p10_db", min=2.0,
        attrs={"phenotype": "119"},
    )
    assert outcome_of(bad_rule, events_b) == ("breached", True)


def test_ceiling_fires_above_max(events_b):
    rule = AlertRule(name="cap", metric="campaign.points_failed", max=0)
    assert outcome_of(rule, events_b) == ("breached", True)
    loose = AlertRule(name="cap", metric="campaign.points_failed", max=5)
    assert outcome_of(loose, events_b) == ("ok", False)


def test_warning_severity_never_gates(events_b):
    rule = AlertRule(
        name="soft", metric="fleet.quality_p10_db", min=200.0,
        severity="warning",
    )
    (outcome,) = evaluate_rules([rule], events_b)
    assert outcome.status == "breached" and not outcome.fired
    assert not breached([outcome])


def test_missing_metric_fires_only_with_require(events_b):
    absent = AlertRule(name="gone", metric="no.such.metric", min=1.0)
    assert outcome_of(absent, events_b) == ("missing", False)
    required = AlertRule(
        name="gone", metric="no.such.metric", min=1.0, require=True,
    )
    assert outcome_of(required, events_b) == ("missing", True)


def test_derived_metrics(events_b):
    # mini_b: 4 computed, 0 hits -> hit rate 0; wall 1.5 s; 1 failed span.
    assert outcome_of(
        AlertRule(name="warm", metric="cache.hit_rate", min=0.5), events_b
    ) == ("breached", True)
    assert outcome_of(
        AlertRule(name="wall", metric="wall_s", max=10.0), events_b
    ) == ("ok", False)
    assert outcome_of(
        AlertRule(name="spans", metric="spans.failed", max=0), events_b
    ) == ("breached", True)


def test_derived_hit_rate_missing_without_lookups():
    events = load_trace(DATA / "mini_partial.jsonl")[:2]  # no cache counters
    rule = AlertRule(name="warm", metric="cache.hit_rate", min=0.5)
    assert outcome_of(rule, events) == ("missing", False)


def test_histogram_facets(events_b):
    # store.append_s on the b side: {count: 2, sum: 0.06, max: 0.04}.
    assert outcome_of(
        AlertRule(name="mean", metric="store.append_s", max=0.01), events_b
    ) == ("breached", True)
    assert outcome_of(
        AlertRule(name="max", metric="store.append_s.max", max=0.05),
        events_b,
    ) == ("ok", False)
    assert outcome_of(
        AlertRule(name="count", metric="store.append_s.count", min=2),
        events_b,
    ) == ("ok", False)


def test_render_outcomes_markers(events_b):
    rules = [
        AlertRule(name="hard", metric="fleet.quality_p10_db", min=200.0),
        AlertRule(
            name="soft", metric="fleet.quality_p10_db", min=200.0,
            severity="warning",
        ),
        AlertRule(name="fine", metric="campaign.points_executed", min=1),
        AlertRule(name="gone", metric="no.such.metric", min=1),
    ]
    text = render_outcomes(evaluate_rules(rules, events_b))
    assert "4 rule(s), 1 firing" in text
    assert "ALERT hard" in text
    assert "warn  soft" in text
    assert "ok  fine" in text
    assert "-   gone" in text


# --------------------------------------------------------------------------
# CLI exit codes (the CI gating contract)
# --------------------------------------------------------------------------


def test_cli_report_alerts_breach_exits_one(tmp_path, capsys):
    rules = write_rules(
        tmp_path,
        """
        [[rule]]
        name = "quality-floor"
        metric = "fleet.quality_p10_db"
        min = 2.0
        """,
    )
    code = main(
        ["report", str(DATA / "mini_b.jsonl"), "--alerts", str(rules)]
    )
    assert code == 1
    assert "ALERT quality-floor" in capsys.readouterr().out


def test_cli_report_alerts_satisfied_exits_zero(tmp_path, capsys):
    rules = write_rules(
        tmp_path,
        """
        [[rule]]
        name = "quality-floor"
        metric = "fleet.quality_p10_db"
        min = 1.0
        """,
    )
    code = main(
        ["report", str(DATA / "mini_b.jsonl"), "--alerts", str(rules)]
    )
    assert code == 0
    assert "0 firing" in capsys.readouterr().out


def test_cli_report_diff_alerts_evaluate_second_run(tmp_path, capsys):
    # The floor holds on run a (worst series 2.5) but not on b (1.5):
    # --diff evaluates the rules against the second (newer) run.
    rules = write_rules(
        tmp_path,
        """
        [[rule]]
        name = "quality-floor"
        metric = "fleet.quality_p10_db"
        min = 2.0
        """,
    )
    code = main(
        ["report", "--diff", str(DATA / "mini_a.jsonl"),
         str(DATA / "mini_b.jsonl"), "--alerts", str(rules)]
    )
    assert code == 1
    assert "ALERT quality-floor" in capsys.readouterr().out

    code = main(
        ["report", "--diff", str(DATA / "mini_b.jsonl"),
         str(DATA / "mini_a.jsonl"), "--alerts", str(rules)]
    )
    assert code == 0


def test_cli_watch_alerts_exit_codes(tmp_path, capsys):
    breach = write_rules(
        tmp_path,
        """
        [[rule]]
        name = "throughput-floor"
        metric = "mission.windows_per_s"
        min = 5000.0
        """,
    )
    code = main(
        ["watch", str(DATA / "mini_a.jsonl"), "--once",
         "--alerts", str(breach), "--trace-dir", str(tmp_path)]
    )
    assert code == 1
    assert "ALERT throughput-floor" in capsys.readouterr().out
