"""E3 — regenerate the Section VI-B energy and area analysis.

Reproduction targets: ECC ~ +55 % energy overhead at each voltage,
DREAM ~ +34 % (a ~21-point reduction), encoder area ratio 1.28 and
decoder area ratio 2.20 (ECC vs DREAM).
"""

from __future__ import annotations

import pytest

from repro.exp.energy_table import measure_workload, run_energy_analysis
from repro.exp.report import format_energy_analysis


def test_energy_analysis(benchmark, report_sink):
    analysis = benchmark.pedantic(
        lambda: run_energy_analysis(workload=measure_workload("dwt")),
        rounds=1,
        iterations=1,
    )
    report_sink.add("energy_vi_b", format_energy_analysis(analysis))

    assert analysis.mean_overhead("dream") == pytest.approx(0.34, abs=0.02)
    assert analysis.mean_overhead("secded") == pytest.approx(0.55, abs=0.02)
    assert analysis.overhead_reduction_points() == pytest.approx(0.21, abs=0.02)
    assert analysis.encoder_area_ratio == pytest.approx(1.28, abs=0.01)
    assert analysis.decoder_area_ratio == pytest.approx(2.20, abs=0.01)


def test_energy_analysis_per_app_workloads(benchmark, report_sink):
    """The overhead ratios are workload-independent (they cancel in the
    per-access ratio) — verified by sweeping all five applications."""

    def run_all():
        return {
            app: run_energy_analysis(workload=measure_workload(app))
            for app in (
                "dwt",
                "matrix_filter",
                "compressed_sensing",
                "morphology",
                "delineation",
            )
        }

    analyses = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["per-application VI-B overheads (mean over sweep):"]
    for app, analysis in analyses.items():
        dream = analysis.mean_overhead("dream") * 100
        ecc = analysis.mean_overhead("secded") * 100
        lines.append(f"  {app:20s} dream {dream:5.1f}%   ecc {ecc:5.1f}%")
        assert dream == pytest.approx(34.0, abs=2.0)
        assert ecc == pytest.approx(55.0, abs=2.0)
    report_sink.add("energy_vi_b_per_app", "\n".join(lines))
