"""Adaptive runtime: closed-loop DVS/EMT mission simulation.

The paper answers "which (voltage, EMT) operating point should a
biomedical node use?" at *design time*; this package answers it at *run
time*.  A mission — a timeline of signal conditions, pathology episodes
and environmental stress — streams through an application window by
window while an operating-point policy picks a rung of the voltage x EMT
ladder, the Section VI-B energy model prices every window, and the
battery drains:

* :mod:`repro.runtime.mission` — :class:`MissionSpec` /
  :class:`SegmentSpec` timelines and the :class:`MissionResult` metrics
  (lifetime, mean/worst quality, switch counts);
* :mod:`repro.runtime.policy` — the :class:`Policy` engine and the four
  shipped controllers (static, quality-reactive, state-of-charge
  scheduler, hysteresis with stress feed-forward) behind a registry;
* :mod:`repro.runtime.simulator` — :class:`MissionSimulator`, which
  calibrates per-operating-point quality/energy models once with the
  real fault-injection pipeline and then streams missions at thousands
  of windows per second;
* :mod:`repro.runtime.scenarios` — shipped day-in-the-life scenarios.

Campaign integration: the ``mission`` evaluator kind
(:mod:`repro.campaign.evaluators`) runs policy x scenario grids through
the parallel campaign runner, store and Pareto analysis; ``python -m
repro mission`` is the CLI front-end.
"""

from .mission import MissionResult, MissionSpec, SegmentSpec
from .policy import (
    POLICIES,
    HysteresisPolicy,
    LadderPoint,
    Observation,
    Policy,
    PolicyContext,
    QualityThresholdPolicy,
    SoCSchedulerPolicy,
    StaticPolicy,
    make_policy,
    policy_from_dict,
    policy_from_token,
    register_policy,
)
from .scenarios import SCENARIOS, register_scenario, scenario_names, scenario_spec
from .simulator import BatchCalibrator, MissionSimulator

__all__ = [
    "MissionResult",
    "MissionSpec",
    "SegmentSpec",
    "Policy",
    "PolicyContext",
    "Observation",
    "LadderPoint",
    "StaticPolicy",
    "QualityThresholdPolicy",
    "SoCSchedulerPolicy",
    "HysteresisPolicy",
    "POLICIES",
    "register_policy",
    "make_policy",
    "policy_from_dict",
    "policy_from_token",
    "BatchCalibrator",
    "MissionSimulator",
    "SCENARIOS",
    "register_scenario",
    "scenario_names",
    "scenario_spec",
]
