"""On-disk campaign result store (JSON lines, append-only).

One store file per campaign, ``<root>/<campaign>.jsonl``, with one JSON
object per line::

    {"hash": "...", "kind": "montecarlo", "params": {...},
     "status": "ok", "result": {...}, "elapsed_s": 0.41}

The append-only discipline makes writes crash-safe: a torn final line
(a writer crashed mid-append) is tolerated and quarantined on load —
logged and copied to a ``<store>.quarantine`` side file, never fatal —
and the next append seals it with a newline before writing, so torn
debris can never merge with a fresh record.  Records are keyed
by the point's content hash (:meth:`CampaignPoint.content_hash`);
re-appending a hash supersedes the earlier record, so a store never needs
compaction to stay *correct* — :meth:`ResultStore.compact` exists to
reclaim the superseded lines' disk space, not to fix anything.  Only
``status == "ok"`` records count as completed — failed points are
retried on the next run.

Loads are memoized against the file's signature — (size, mtime_ns)
plus a CRC-32 fingerprint of the file's head and tail bytes: repeated
``load()``/``__len__``/``completed_hashes()`` calls between writes parse
the file once, which matters once fleet-scale campaigns hold thousands
of records.  The content fingerprint closes the staleness window a pure
(size, mtime) key has on filesystems with coarse mtime granularity,
where ``compact()`` (or another process's ``append_many`` plus
compaction) can replace the file with equal-size content inside one
mtime tick.

For write-concurrent deployments — many service workers appending into
one campaign — :class:`ShardedResultStore` spreads the same records
across N JSONL shard files inside a ``<campaign>.shards/`` directory,
routed by content-hash key.  It presents the exact
:class:`ResultStore` interface (``load``/``append_many``/``compact``/
resume semantics are unchanged, and a given record lands in exactly one
deterministic shard), so readers and the session layer cannot tell the
difference.  :meth:`ResultStore.for_campaign` picks the layout: an
existing shard directory always wins, and ``REPRO_STORE_SHARDS=N``
makes *new* stores sharded.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zlib
from pathlib import Path

from .. import obs
from ..errors import CampaignError

__all__ = [
    "ResultStore",
    "ShardedResultStore",
    "SHARDS_ENV",
    "default_store_root",
    "locked_append",
    "quarantine_torn_lines",
]

#: Environment knob: shard count for *newly created* campaign stores
#: resolved through :meth:`ResultStore.for_campaign` (0/unset = plain).
SHARDS_ENV = "REPRO_STORE_SHARDS"


def locked_append(path: Path, payload: bytes) -> None:
    """Append ``payload`` under an exclusive lock, sealing torn tails.

    The crash-consistency primitive shared by the result store and the
    service job journal: one ``open``/``flock``/``write`` per call, and
    if the previous writer died mid-line the torn tail is sealed with a
    newline first so the debris stays an isolated (quarantinable) line
    instead of merging with the first fresh record.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    # a+b (read + append) so the torn-tail check can inspect the
    # current last byte through the same locked descriptor.
    with path.open("a+b") as handle:
        try:
            import fcntl

            fcntl.flock(handle, fcntl.LOCK_EX)
        except (ImportError, OSError):  # pragma: no cover
            # Best-effort locking: non-POSIX platforms have no fcntl,
            # and some network filesystems refuse flock — appends stay
            # as unlocked as they historically were.
            pass
        size = os.fstat(handle.fileno()).st_size
        if size and os.pread(handle.fileno(), 1, size - 1) != b"\n":
            handle.write(b"\n")
        handle.write(payload)

_LOG = logging.getLogger(__name__)


def quarantine_torn_lines(path: Path, lines: list[str]) -> int:
    """Preserve malformed JSONL lines in a ``.quarantine`` side file.

    Crash-consistency contract shared by the result store and the cache
    event log: a malformed line (usually the torn tail of a writer that
    died mid-append) is *tolerated* — skipped by the reader, never
    fatal — and *quarantined* — logged and appended to
    ``<path>.quarantine`` so the debris stays inspectable after a
    :meth:`ResultStore.compact` or log rotation drops it from the live
    file.  Lines already quarantined are not duplicated.  Returns the
    number of newly quarantined lines; quarantine-file write errors are
    swallowed (the side file is best-effort, the load must succeed).
    """
    if not lines:
        return 0
    side = path.with_suffix(path.suffix + ".quarantine")
    try:
        known = set(
            side.read_text(encoding="utf-8").splitlines()
        ) if side.exists() else set()
        fresh = [line for line in lines if line not in known]
        if fresh:
            with side.open("a", encoding="utf-8") as handle:
                handle.write("".join(line + "\n" for line in fresh))
    except OSError:  # pragma: no cover - best-effort side file
        fresh = lines
    _LOG.warning(
        "%s: quarantined %d malformed line(s) (torn tail of an "
        "interrupted writer?); see %s",
        path, len(lines), side,
    )
    if obs.enabled():
        obs.counter("store.quarantined_lines", len(lines))
    return len(fresh)

#: Valid terminal states of a stored point.
_STATUSES = ("ok", "failed")

#: Bytes of the file's head and tail hashed into the load-memo signature.
_FINGERPRINT_BYTES = 4096


def default_store_root() -> Path:
    """Directory campaign stores live in.

    ``REPRO_CAMPAIGN_DIR`` overrides the default
    ``benchmarks/results/campaigns`` (relative to the working directory),
    mirroring the benchmark harness's results layout.  ``~`` in the
    override expands to the user's home directory.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_DIR")
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "campaigns"


class ResultStore:
    """Append-only JSONL store of one campaign's point results."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        # load() memo: (file signature, parsed records, raw line count).
        self._memo: tuple[tuple, dict[str, dict], int] | None = None
        #: Number of full file parses (diagnostic; exercised by tests).
        self.n_parses = 0

    @classmethod
    def for_campaign(
        cls, name: str, root: Path | str | None = None
    ) -> "ResultStore":
        """The store for campaign ``name`` under ``root`` (or the default).

        Layout-aware: an existing ``<name>.shards/`` directory resolves
        to a :class:`ShardedResultStore` regardless of configuration, so
        every reader of a sharded campaign agrees on the layout.  When
        neither layout exists yet, ``REPRO_STORE_SHARDS=N`` (N > 1, the
        service daemon's default environment) creates a sharded store;
        otherwise the historical single-file layout is used.
        """
        root = Path(root) if root is not None else default_store_root()
        shard_dir = root / f"{name}.shards"
        plain = root / f"{name}.jsonl"
        if shard_dir.is_dir():
            return ShardedResultStore(shard_dir)
        if not plain.exists():
            raw = os.environ.get(SHARDS_ENV, "")
            try:
                n_shards = int(raw) if raw else 0
            except ValueError:
                raise CampaignError(
                    f"{SHARDS_ENV} must be an integer, got {raw!r}"
                ) from None
            if n_shards > 1:
                return ShardedResultStore.create(shard_dir, n_shards)
        return ResultStore(plain)

    def _signature(self) -> tuple | None:
        """The file's identity, or None when absent.

        (size, mtime_ns, head+tail CRC-32): the content fingerprint
        catches a rewrite that preserves both size and mtime — possible
        within one mtime tick on coarse-granularity filesystems after
        :meth:`compact` or a concurrent writer's append + compaction —
        which a pure stat-based key would mistake for the memoized
        content.  Appends always change the tail; compaction reorders
        or drops lines, changing head or tail bytes.
        """
        try:
            stat = self.path.stat()
        except OSError:
            return None
        try:
            with self.path.open("rb") as handle:
                head = handle.read(_FINGERPRINT_BYTES)
                if stat.st_size > 2 * _FINGERPRINT_BYTES:
                    handle.seek(stat.st_size - _FINGERPRINT_BYTES)
                    tail = handle.read(_FINGERPRINT_BYTES)
                else:
                    tail = handle.read()
        except OSError:
            return None
        return (
            stat.st_size,
            stat.st_mtime_ns,
            zlib.crc32(tail, zlib.crc32(head)),
        )

    def load(self) -> dict[str, dict]:
        """Read all records, keyed by point hash (later lines win).

        Malformed lines (e.g. a torn tail from an interrupted run) are
        tolerated and quarantined: skipped by the parse, logged, and
        preserved in ``<store>.quarantine`` — a crashed run never makes
        its store unreadable.  An absent file is an empty store.
        Duplicate lines from resumed or ``resume=False`` runs collapse
        here — last write wins.  The parse is memoized against the
        file's (size, mtime) signature; the returned mapping is a fresh
        dict each call, but the record dicts themselves are shared —
        treat them as read-only.
        """
        signature = self._signature()
        if signature is None:
            return {}
        if self._memo is not None and self._memo[0] == signature:
            return dict(self._memo[1])
        records: dict[str, dict] = {}
        n_lines = 0
        torn: list[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                n_lines += 1
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn.append(line)
                    continue
                if isinstance(record, dict) and "hash" in record:
                    records[record["hash"]] = record
        if torn:
            quarantine_torn_lines(self.path, torn)
        self.n_parses += 1
        self._memo = (signature, records, n_lines)
        return dict(records)

    def completed_hashes(self) -> set[str]:
        """Hashes of points with a successful stored result."""
        return {
            h for h, rec in self.load().items() if rec.get("status") == "ok"
        }

    def append(self, record: dict) -> None:
        """Persist one point record (creates the store on first write)."""
        self.append_many([record])

    def append_many(self, records: list[dict]) -> None:
        """Persist several point records under one open + file lock.

        The campaign runner flushes every point that completed in one
        pool tick through this path: the records are validated up
        front, serialised, and written in a single locked append — one
        ``open``/``flock``/``write`` per tick instead of per point,
        while the JSONL format and content-hash keys stay exactly as
        :meth:`append` writes them.  The exclusive ``fcntl`` lock keeps
        concurrent appenders (e.g. two campaigns sharing a store file)
        line-atomic even when a tick's payload exceeds the pipe-atomic
        write size.
        """
        if not records:
            return
        for record in records:
            status = record.get("status")
            if status not in _STATUSES:
                raise CampaignError(
                    f"record status must be one of {_STATUSES}, got {status!r}"
                )
            if "hash" not in record:
                raise CampaignError("record must carry the point hash")
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        started = time.perf_counter() if obs.enabled() else 0.0
        locked_append(self.path, payload)
        if obs.enabled():
            obs.observe("store.append_s", time.perf_counter() - started)
            obs.counter("store.records_appended", len(records))
        # The next load() re-stats the file; dropping the memo eagerly
        # also covers filesystems with coarse mtime resolution.
        self._memo = None

    def compact(self) -> int:
        """Rewrite the store with one line per hash (last write wins).

        Long-lived stores accumulate superseded lines — every
        ``resume=False`` re-run appends a fresh record per point.  The
        rewrite goes through a temporary file and an atomic
        :func:`os.replace`, so a crash mid-compaction leaves the
        original store untouched.  Returns the number of superseded (or
        malformed) lines dropped; an absent store is a no-op.
        """
        records = self.load()
        if self._memo is None:
            return 0
        n_lines = self._memo[2]
        dropped = n_lines - len(records)
        if dropped <= 0:
            return 0
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self._memo = None
        return dropped

    def __len__(self) -> int:
        return len(self.load())


#: Name of the shard-layout metadata file inside a ``.shards`` directory.
_SHARDS_META = "shards.json"


class ShardedResultStore(ResultStore):
    """One campaign's results spread across N content-hash-routed shards.

    The store is a directory (``<root>/<campaign>.shards/``) holding a
    ``shards.json`` layout descriptor plus ``shard-00.jsonl`` ...
    ``shard-NN.jsonl`` files, each an ordinary :class:`ResultStore`.  A
    record's shard is a pure function of its content hash, so every
    writer — concurrent service workers included — agrees where a
    record lives, resume/dedup semantics are per-record identical to
    the single-file layout, and two appends of the same point can never
    land in different shards.  The public interface is exactly
    :class:`ResultStore`: ``load`` merges the shards, ``append_many``
    groups records by shard (one locked append per touched shard), and
    ``compact`` compacts each shard in place.
    """

    def __init__(self, path: Path | str) -> None:
        super().__init__(path)
        meta_path = self.path / _SHARDS_META
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            n_shards = int(meta["shards"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CampaignError(
                f"{self.path} is not a sharded result store: "
                f"unreadable {_SHARDS_META} ({exc})"
            ) from exc
        if n_shards < 1:
            raise CampaignError(
                f"{self.path}: shard count must be >= 1, got {n_shards}"
            )
        self.n_shards = n_shards
        self.shards = [
            ResultStore(self.path / f"shard-{index:02d}.jsonl")
            for index in range(n_shards)
        ]

    @classmethod
    def create(
        cls, path: Path | str, n_shards: int
    ) -> "ShardedResultStore":
        """Initialise (or re-open) a shard directory for ``n_shards``.

        Idempotent: an existing layout descriptor wins — the store's
        shard count is fixed at creation, because re-routing records
        would orphan everything already written.
        """
        path = Path(path)
        meta_path = path / _SHARDS_META
        if not meta_path.is_file():
            if n_shards < 1:
                raise CampaignError(
                    f"shard count must be >= 1, got {n_shards}"
                )
            path.mkdir(parents=True, exist_ok=True)
            tmp = meta_path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps({"shards": n_shards, "version": 1}) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, meta_path)
        return cls(path)

    def shard_for(self, point_hash: str) -> ResultStore:
        """The shard a record with this content hash belongs to."""
        return self.shards[self._route(point_hash)]

    def _route(self, point_hash: str) -> int:
        try:
            return int(point_hash[:8], 16) % self.n_shards
        except ValueError:
            # Non-hex keys (hand-written records) still route
            # deterministically via the CRC of the full key.
            return zlib.crc32(point_hash.encode("utf-8")) % self.n_shards

    def load(self) -> dict[str, dict]:
        """Merged view of every shard (each hash lives in one shard)."""
        records: dict[str, dict] = {}
        for shard in self.shards:
            records.update(shard.load())
        return records

    def append_many(self, records: list[dict]) -> None:
        """Route records to their shards; one locked append per shard."""
        if not records:
            return
        by_shard: dict[int, list[dict]] = {}
        for record in records:
            if "hash" not in record:
                raise CampaignError("record must carry the point hash")
            by_shard.setdefault(self._route(record["hash"]), []).append(
                record
            )
        for index in sorted(by_shard):
            self.shards[index].append_many(by_shard[index])

    def compact(self) -> int:
        """Compact every shard; returns total superseded lines dropped."""
        return sum(shard.compact() for shard in self.shards)

    @property
    def n_parses(self) -> int:  # type: ignore[override]
        """Total full-file parses across the shards (diagnostic)."""
        return sum(shard.n_parses for shard in self.shards)

    @n_parses.setter
    def n_parses(self, value: int) -> None:
        # The base-class __init__ assigns 0; shard counters are
        # authoritative, so the assignment is accepted and ignored.
        pass
