"""Equivalence of the campaign-backed drivers with their inline paths.

The Fig 2 / Fig 4 drivers evaluate their grids through the shared
campaign runner, but fall back to an in-process loop when pre-built
app/EMT instances are supplied.  Both paths (and any worker count) must
produce identical numbers — the guarantee that lets callers scale sweeps
without revalidating results — and the campaign path must resume from a
result store.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import make_app
from repro.campaign import ResultStore
from repro.emt import make_emt
from repro.errors import ExperimentError
from repro.exp import ExperimentConfig, fig2_spec, fig4_spec, run_fig2, run_fig4
from repro.exp.energy_table import run_energy_analysis

FAST = ExperimentConfig(records=("100",), duration_s=3.0, n_runs=2)
VOLTAGES = (0.6, 0.8)


class TestFig4Paths:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        return run_fig4(
            app_names=("morphology",), config=FAST, voltages=VOLTAGES
        )

    def test_inline_instances_match_campaign(self, campaign_result):
        inline = run_fig4(
            app_names=("morphology",),
            config=FAST,
            voltages=VOLTAGES,
            apps={"morphology": make_app("morphology")},
            emts={n: make_emt(n) for n in ("none", "dream", "secded")},
        )
        for voltage in VOLTAGES:
            assert (
                inline.points["morphology"][voltage].snr_mean_db
                == campaign_result.points["morphology"][voltage].snr_mean_db
            )

    def test_worker_pool_matches_serial(self, campaign_result):
        parallel = run_fig4(
            app_names=("morphology",),
            config=FAST,
            voltages=VOLTAGES,
            n_workers=2,
        )
        for voltage in VOLTAGES:
            assert (
                parallel.points["morphology"][voltage].snr_mean_db
                == campaign_result.points["morphology"][voltage].snr_mean_db
            )

    def test_store_resume_round_trips(self, campaign_result, tmp_path):
        store = ResultStore(tmp_path / "fig4.jsonl")
        first = run_fig4(
            app_names=("morphology",),
            config=FAST,
            voltages=VOLTAGES,
            store=store,
        )
        assert len(store.completed_hashes()) == len(VOLTAGES)
        resumed = run_fig4(
            app_names=("morphology",),
            config=FAST,
            voltages=VOLTAGES,
            store=store,
        )
        for voltage in VOLTAGES:
            point = resumed.points["morphology"][voltage]
            assert point.snr_mean_db == first.points["morphology"][voltage].snr_mean_db
            # JSON round-trip must preserve exact statistics.
            assert (
                point.snr_mean_db
                == campaign_result.points["morphology"][voltage].snr_mean_db
            )

    def test_unknown_app_fails_before_any_grid_work(self):
        """A typo'd name must not cost a full sweep of the valid points."""
        with pytest.raises(ExperimentError, match="fft"):
            run_fig4(app_names=("dwt", "fft"), config=FAST, voltages=(0.9,))
        with pytest.raises(ExperimentError, match="bch"):
            run_fig4(
                app_names=("dwt",), emt_names=("none", "bch"),
                config=FAST, voltages=(0.9,),
            )

    def test_degenerate_grids_return_empty_results(self):
        """Empty selections behave as the pre-campaign drivers did:
        empty results, not a spec-validation error."""
        empty_apps = run_fig4(app_names=(), config=FAST, voltages=(0.9,))
        assert empty_apps.points == {}
        no_voltages = run_fig4(app_names=("dwt",), config=FAST, voltages=())
        assert no_voltages.points == {"dwt": {}}
        assert run_fig2(app_names=(), config=FAST).snr_db == {}
        analysis = run_energy_analysis(voltages=())
        assert analysis.total_pj["none"] == {}
        assert analysis.encoder_area_ratio == pytest.approx(1.28, abs=0.01)
        # ... but name validation still runs on a degenerate grid.
        with pytest.raises(ExperimentError, match="typo"):
            run_energy_analysis(emt_names=("none", "typo"), voltages=())


class TestFig2Paths:
    def test_inline_instances_match_campaign(self):
        config = ExperimentConfig(records=("100",), duration_s=2.0)
        via_campaign = run_fig2(app_names=("morphology",), config=config)
        inline = run_fig2(
            config=config, apps={"morphology": make_app("morphology")}
        )
        assert via_campaign.snr_db == inline.snr_db

    def test_spec_covers_the_full_grid(self):
        spec = fig2_spec(("dwt", "morphology"), FAST)
        assert spec.grid_size == 2 * 2 * 16


class TestTradeoffImplementationsAgree:
    """Drift guard: ``exp.tradeoff.run_tradeoff`` (Fig 4 objects) and
    ``campaign.analysis.extract_tradeoff`` (stored records) implement the
    same Section VI-C rules; on one dataset they must produce identical
    operating points."""

    def test_same_operating_points_from_both_paths(self):
        import numpy as np

        from repro.campaign import extract_tradeoff
        from repro.exp.energy_table import energy_spec, measure_workload
        from repro.exp.tradeoff import run_tradeoff
        from repro.campaign.runner import run_campaign

        voltages = (0.55, 0.65, 0.75, 0.85, 0.9)
        fig4 = run_fig4(
            app_names=("morphology",), config=FAST, voltages=voltages
        )
        workload = measure_workload("morphology", record="100", duration_s=3.0)
        tolerance = 40.0

        via_exp = run_tradeoff(
            fig4, app_name="morphology", tolerance_db=tolerance,
            workload=workload,
        )

        energy = run_campaign(
            energy_spec(("none", "dream", "secded"), voltages, workload)
        )
        rows = [
            {
                "emt": emt,
                "voltage": voltage,
                "snr_db": fig4.points["morphology"][voltage].snr_mean_db[emt],
                "energy_pj": rec["result"]["total_pj"],
            }
            for rec in energy.records
            for emt, voltage in [
                (rec["params"]["emt"], rec["params"]["voltage"])
            ]
        ]
        via_campaign = {
            p.emt_name: p for p in extract_tradeoff(rows, tolerance)
        }

        assert len(via_campaign) == len(via_exp.operating_points)
        for point in via_exp.operating_points:
            twin = via_campaign[point.emt_name]
            assert twin.v_min_safe == point.v_min_safe
            assert np.isclose(twin.saving_vs_nominal, point.saving_vs_nominal)


class TestSpecShapes:
    def test_fig4_spec_groups_emts_per_point(self):
        """Section V fairness: EMTs share defect samples, so they are a
        fixed parameter of each point, not an axis."""
        spec = fig4_spec(("dwt",), config=FAST, voltages=VOLTAGES)
        assert "emts" in spec.fixed
        assert set(spec.axes) == {"app", "voltage"}

    def test_energy_analysis_unchanged_through_campaign(self):
        analysis = run_energy_analysis()
        assert analysis.mean_overhead("dream") == pytest.approx(0.34, abs=0.02)
        assert analysis.mean_overhead("secded") == pytest.approx(0.55, abs=0.02)
