"""Unit and property tests for the vectorised bit helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import (
    bit_mask,
    clear_bit,
    extract_bit,
    field_mask,
    pack_fields,
    parity,
    popcount,
    set_bit,
    sign_run_length,
    to_signed,
    to_unsigned,
    unpack_field,
)
from repro.errors import FixedPointError

WORD16 = st.integers(min_value=0, max_value=0xFFFF)
SIGNED16 = st.integers(min_value=-32768, max_value=32767)


class TestMasks:
    def test_bit_mask_values(self):
        assert bit_mask(0) == 0
        assert bit_mask(1) == 1
        assert bit_mask(16) == 0xFFFF

    def test_bit_mask_rejects_negative(self):
        with pytest.raises(FixedPointError):
            bit_mask(-1)

    def test_field_mask(self):
        assert field_mask(4, 4) == 0xF0
        assert field_mask(0, 16) == 0xFFFF

    def test_field_mask_rejects_negative_lsb(self):
        with pytest.raises(FixedPointError):
            field_mask(-1, 3)


class TestSignedness:
    def test_to_unsigned_basic(self):
        out = to_unsigned(np.array([-1, 0, 1, -32768]), 16)
        assert out.tolist() == [0xFFFF, 0, 1, 0x8000]

    def test_to_signed_basic(self):
        out = to_signed(np.array([0xFFFF, 0, 1, 0x8000]), 16)
        assert out.tolist() == [-1, 0, 1, -32768]

    @given(value=SIGNED16)
    def test_roundtrip_signed(self, value):
        pattern = to_unsigned(np.array([value]), 16)
        assert int(to_signed(pattern, 16)[0]) == value

    @given(pattern=WORD16)
    def test_roundtrip_unsigned(self, pattern):
        signed = to_signed(np.array([pattern]), 16)
        assert int(to_unsigned(signed, 16)[0]) == pattern

    def test_widths_other_than_16(self):
        assert int(to_signed(np.array([0x80]), 8)[0]) == -128
        assert int(to_unsigned(np.array([-1]), 22)[0]) == (1 << 22) - 1


class TestPopcountParity:
    @given(pattern=WORD16)
    def test_popcount_matches_python(self, pattern):
        assert int(popcount(np.array([pattern]))[0]) == bin(pattern).count("1")

    @given(pattern=WORD16)
    def test_parity_is_popcount_lsb(self, pattern):
        assert int(parity(np.array([pattern]))[0]) == bin(pattern).count("1") % 2

    def test_popcount_rejects_negative(self):
        with pytest.raises(FixedPointError):
            popcount(np.array([-1]))

    def test_popcount_wide_words(self):
        assert int(popcount(np.array([(1 << 22) - 1]))[0]) == 22


def reference_sign_run(value: int, width: int) -> int:
    """Bit-serial reference for the MSB run length."""
    msb = (value >> (width - 1)) & 1
    run = 1
    for position in range(width - 2, -1, -1):
        if (value >> position) & 1 == msb:
            run += 1
        else:
            break
    return run


class TestSignRunLength:
    @given(pattern=WORD16)
    def test_matches_reference(self, pattern):
        got = int(sign_run_length(np.array([pattern]), 16)[0])
        assert got == reference_sign_run(pattern, 16)

    def test_extremes(self):
        runs = sign_run_length(np.array([0x0000, 0xFFFF, 0x7FFF, 0x8000]), 16)
        assert runs.tolist() == [16, 16, 1, 1]

    def test_small_positive_has_long_run(self):
        assert int(sign_run_length(np.array([0x0003]), 16)[0]) == 14

    def test_small_negative_has_long_run(self):
        # -4 = 0xFFFC: thirteen leading ones followed by 100.
        assert int(sign_run_length(np.array([0xFFFC]), 16)[0]) == 14

    @given(pattern=st.integers(min_value=0, max_value=0xFF))
    def test_width_8(self, pattern):
        got = int(sign_run_length(np.array([pattern]), 8)[0])
        assert got == reference_sign_run(pattern, 8)

    @given(pattern=WORD16)
    def test_run_bits_all_equal_to_sign(self, pattern):
        run = int(sign_run_length(np.array([pattern]), 16)[0])
        sign = (pattern >> 15) & 1
        for position in range(16 - run, 16):
            assert (pattern >> position) & 1 == sign

    @given(pattern=WORD16)
    def test_bit_below_run_is_inverted_sign(self, pattern):
        run = int(sign_run_length(np.array([pattern]), 16)[0])
        if run < 16:
            sign = (pattern >> 15) & 1
            boundary = 16 - run - 1
            assert (pattern >> boundary) & 1 == 1 - sign


class TestBitSetClearExtract:
    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=15))
    def test_set_then_extract(self, pattern, position):
        updated = set_bit(np.array([pattern]), position)
        assert int(extract_bit(updated, position)[0]) == 1

    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=15))
    def test_clear_then_extract(self, pattern, position):
        updated = clear_bit(np.array([pattern]), position)
        assert int(extract_bit(updated, position)[0]) == 0

    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=15))
    def test_set_clear_only_touch_target(self, pattern, position):
        mask = 1 << position
        assert int(set_bit(np.array([pattern]), position)[0]) == pattern | mask
        assert int(clear_bit(np.array([pattern]), position)[0]) == pattern & ~mask


class TestFieldPacking:
    def test_pack_and_unpack(self):
        words = pack_fields([(np.array([0b1010]), 4), (np.array([0b1]), 1)])
        assert int(words[0]) == 0b11010
        assert int(unpack_field(words, 0, 4)[0]) == 0b1010
        assert int(unpack_field(words, 4, 1)[0]) == 1

    def test_pack_rejects_oversized_values(self):
        with pytest.raises(FixedPointError):
            pack_fields([(np.array([4]), 2)])

    def test_pack_requires_fields(self):
        with pytest.raises(FixedPointError):
            pack_fields([])

    @given(
        low=st.integers(min_value=0, max_value=15),
        high=st.integers(min_value=0, max_value=1),
    )
    def test_pack_unpack_roundtrip(self, low, high):
        words = pack_fields([(np.array([low]), 4), (np.array([high]), 1)])
        assert int(unpack_field(words, 0, 4)[0]) == low
        assert int(unpack_field(words, 4, 1)[0]) == high
