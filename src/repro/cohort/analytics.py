"""Population reliability analytics over fleet result rows.

A fleet run reduces to three deployment questions the paper's
single-device tables cannot answer:

* **battery survival** — what fraction of the fleet is still alive after
  t days?  (:func:`survival_curve`, an empirical survival function over
  per-patient lifetimes);
* **quality spread** — what output quality do the best and worst
  wearers get?  (:func:`quality_bands`, percentile bands of any
  per-patient metric);
* **population trade-off** — which policy x lattice configurations are
  Pareto-optimal when each configuration is judged by its *tail*
  statistics (5th-percentile lifetime vs worst-decile quality), not its
  mean?  (:func:`population_frontier`).

Everything operates on plain row/summary dicts as produced by
:class:`~repro.cohort.fleet.FleetResult`, so analyses run over stored
campaign records without re-simulation — the same post-hoc discipline as
:mod:`repro.campaign.analysis`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..campaign.analysis import pareto_frontier
from ..errors import CohortError

__all__ = [
    "survival_curve",
    "median_survival_days",
    "quality_bands",
    "population_frontier",
]


def _lifetimes(rows: Iterable[dict]) -> np.ndarray:
    values = [
        float(row["lifetime_days"])
        for row in rows
        if row.get("status", "ok") == "ok"
    ]
    if not values:
        raise CohortError("no successful patient rows to analyse")
    return np.asarray(values)


def survival_curve(
    rows: Iterable[dict],
    times_days: Sequence[float] | None = None,
    n_points: int = 25,
) -> list[tuple[float, float]]:
    """Empirical battery-survival curve of a fleet.

    A patient "survives" time ``t`` when their battery lifetime reaches
    it, so the curve starts at 1.0 and steps down monotonically.  With
    ``times_days`` omitted, the curve is evaluated on an even grid from
    zero to the longest observed lifetime.  Returns ``(t_days,
    fraction_alive)`` pairs.
    """
    lifetimes = _lifetimes(rows)
    if times_days is None:
        horizon = float(lifetimes.max())
        times = np.linspace(0.0, horizon, n_points)
    else:
        times = np.asarray(list(times_days), dtype=float)
        if times.size == 0:
            raise CohortError("survival curve needs at least one time")
    return [
        (float(t), float(np.mean(lifetimes >= t))) for t in times
    ]


def median_survival_days(rows: Iterable[dict]) -> float:
    """The time by which half the fleet's batteries have died."""
    return float(np.percentile(_lifetimes(rows), 50.0))


def quality_bands(
    rows: Iterable[dict],
    metric: str = "worst_snr_db",
    percentiles: Sequence[float] = (5.0, 25.0, 50.0, 75.0, 95.0),
) -> dict[float, float]:
    """Population percentile bands of a per-patient metric.

    The default metric is each patient's *worst* window SNR — the
    population spread of the guarantee a clinician actually cares
    about.  Returns ``{percentile: value}`` over successful rows.
    """
    ok = [row for row in rows if row.get("status", "ok") == "ok"]
    if not ok:
        raise CohortError("no successful patient rows to analyse")
    try:
        values = np.asarray([float(row[metric]) for row in ok])
    except KeyError as exc:
        raise CohortError(
            f"rows have no metric {exc.args[0]!r}"
        ) from exc
    return {
        float(p): float(np.percentile(values, p)) for p in percentiles
    }


def population_frontier(
    summaries: Iterable[dict],
    x_key: str = "lifetime_p5_days",
    y_key: str = "quality_p10_db",
) -> list[dict]:
    """Pareto-optimal fleet configurations by tail statistics.

    ``summaries`` are :meth:`~repro.cohort.fleet.FleetResult.summary`
    dicts (or stored ``cohort`` campaign records), one per policy x
    cohort configuration.  Both default objectives are *maximised*: the
    lifetime 95 % of wearers exceed, and the quality the worst decile
    of wearers still gets.  Returns the non-dominated summaries, best
    ``x`` first.
    """
    return pareto_frontier(
        list(summaries),
        x_key=x_key,
        y_key=y_key,
        minimize_x=False,
        maximize_y=True,
    )
