"""Tests for the EMT interface, NoProtection, ParityEMT and HybridEMT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emt import (
    DecodeStats,
    DreamEMT,
    HybridEMT,
    NoProtection,
    ParityEMT,
    SecDedEMT,
    VoltageRange,
    make_emt,
)
from repro.errors import EMTError

WORD16 = st.integers(min_value=0, max_value=0xFFFF)


class TestDecodeStats:
    def test_merge_accumulates(self):
        a = DecodeStats(words=10, corrected=2, detected_uncorrectable=1)
        b = DecodeStats(words=5, corrected=1, detected_uncorrectable=4)
        a.merge(b)
        assert (a.words, a.corrected, a.detected_uncorrectable) == (15, 3, 5)


class TestNoProtection:
    def test_geometry(self):
        emt = NoProtection()
        assert emt.stored_bits == 16
        assert emt.side_bits == 0
        assert emt.extra_bits == 0

    @given(pattern=WORD16)
    def test_identity_roundtrip(self, pattern):
        emt = NoProtection()
        stored, side = emt.encode(np.array([pattern]))
        assert side is None
        assert int(emt.decode(stored, None)[0]) == pattern

    def test_faults_reach_payload_unchecked(self):
        emt = NoProtection()
        stored, _ = emt.encode(np.array([0x0000]))
        decoded = emt.decode(stored | 0x8000, None)
        assert int(decoded[0]) == 0x8000

    def test_encode_returns_copy(self):
        emt = NoProtection()
        payload = np.array([1, 2, 3])
        stored, _ = emt.encode(payload)
        stored[0] = 99
        assert payload[0] == 1

    def test_rejects_tiny_word(self):
        with pytest.raises(EMTError):
            NoProtection(data_bits=1)


class TestParity:
    def test_geometry(self):
        emt = ParityEMT()
        assert emt.stored_bits == 17
        assert emt.extra_bits == 1

    @given(pattern=WORD16)
    def test_clean_roundtrip(self, pattern):
        emt = ParityEMT()
        stored, side = emt.encode(np.array([pattern]))
        assert side is None
        assert int(emt.decode(stored, None)[0]) == pattern

    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=16))
    def test_single_error_detected_not_corrected(self, pattern, position):
        emt = ParityEMT()
        stored, _ = emt.encode(np.array([pattern]))
        corrupted = stored ^ (1 << position)
        stats = DecodeStats()
        decoded = emt.decode(corrupted, None, stats)
        assert stats.detected_uncorrectable == 1
        assert int(decoded[0]) == int(corrupted[0]) & 0xFFFF

    @given(pattern=WORD16)
    def test_double_error_escapes_detection(self, pattern):
        emt = ParityEMT()
        stored, _ = emt.encode(np.array([pattern]))
        stats = DecodeStats()
        emt.decode(stored ^ 0b11, None, stats)
        assert stats.detected_uncorrectable == 0


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoProtection), ("dream", DreamEMT), ("secded", SecDedEMT),
    ])
    def test_make_emt(self, name, cls):
        assert isinstance(make_emt(name), cls)

    def test_make_emt_unknown(self):
        with pytest.raises(EMTError):
            make_emt("reed-solomon")


def build_hybrid(voltage: float = 0.7) -> HybridEMT:
    members = {
        e.name: e for e in (NoProtection(), DreamEMT(), SecDedEMT())
    }
    policy = [
        VoltageRange(0.85, 0.90, "none"),
        VoltageRange(0.65, 0.85, "dream"),
        VoltageRange(0.55, 0.65, "secded"),
    ]
    return HybridEMT(members, policy, voltage=voltage)


class TestVoltageRange:
    def test_contains_is_inclusive(self):
        entry = VoltageRange(0.65, 0.85, "dream")
        assert entry.contains(0.65)
        assert entry.contains(0.85)
        assert not entry.contains(0.86)

    def test_rejects_empty_range(self):
        with pytest.raises(EMTError):
            VoltageRange(0.9, 0.5, "none")


class TestHybrid:
    def test_selects_paper_ranges(self):
        hybrid = build_hybrid(0.9)
        assert hybrid.active.name == "none"
        hybrid.set_voltage(0.7)
        assert hybrid.active.name == "dream"
        hybrid.set_voltage(0.6)
        assert hybrid.active.name == "secded"

    def test_boundary_prefers_lower_range(self):
        # 0.85 is in both [0.85, 0.9] (none) and [0.65, 0.85] (dream);
        # the policy is sorted by v_min, so dream (lower v_min) wins.
        hybrid = build_hybrid(0.85)
        assert hybrid.active.name == "dream"

    def test_uncovered_voltage_raises(self):
        hybrid = build_hybrid(0.7)
        with pytest.raises(EMTError):
            hybrid.set_voltage(0.5)

    def test_geometry_is_widest_member(self):
        hybrid = build_hybrid()
        assert hybrid.stored_bits == 22  # SEC/DED provisioning
        assert hybrid.side_bits == 5  # DREAM mask memory provisioning

    @given(pattern=WORD16)
    def test_delegates_roundtrip(self, pattern):
        hybrid = build_hybrid(0.7)  # dream active
        stored, side = hybrid.encode(np.array([pattern]))
        assert int(hybrid.decode(stored, side)[0]) == pattern
        assert hybrid.encode_word(pattern)[0] == pattern

    def test_policy_must_reference_members(self):
        members = {"none": NoProtection()}
        with pytest.raises(EMTError):
            HybridEMT(members, [VoltageRange(0.5, 0.9, "dream")], 0.7)

    def test_members_must_agree_on_width(self):
        members = {
            "none": NoProtection(data_bits=16),
            "dream": DreamEMT(data_bits=32),
        }
        with pytest.raises(EMTError):
            HybridEMT(members, [VoltageRange(0.5, 0.9, "none")], 0.7)

    def test_requires_members(self):
        with pytest.raises(EMTError):
            HybridEMT({}, [], 0.7)
