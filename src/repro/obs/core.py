"""Span-based tracing and metrics with a no-op fast path.

The tracer is process-global and **off by default**: every probe in the
library (``obs.span``, ``obs.counter``, ...) first reads one module
flag, so an untraced run pays a single boolean/env check per probe and
allocates nothing — the property the overhead-guard test pins.

When enabled, events stream to one append-only JSONL sink (the schema
of :mod:`repro.obs.events`):

* **spans** buffer in-process and flush whenever the process's span
  stack empties (so worker processes that are ``terminate()``-d by a
  closing pool lose at most their currently-open span) or the buffer
  reaches :data:`FLUSH_EVERY` events;
* **counters** and **histograms** aggregate in-process and are folded
  into metric events at each flush — a mission incrementing a counter
  thousands of times costs dict arithmetic, not I/O;
* **gauges** write through immediately (last write wins at read time).

Context propagates across ``multiprocessing`` pools through three
environment variables (``REPRO_TRACE_FILE``, ``REPRO_TRACE_RUN``,
``REPRO_TRACE_PARENT``): :func:`enable` exports the sink, and a pool
owner wraps pool construction in :func:`worker_parent` so children —
under ``fork`` *and* ``spawn`` — lazily build their own tracer whose
root spans parent onto the owner's span.  A forked child that inherits
the parent's tracer object is detected by pid and rebound to a fresh
buffer, so parent events are never written twice.

Example:
    >>> import tempfile
    >>> from repro import obs
    >>> path = tempfile.mktemp(suffix=".jsonl")
    >>> _ = obs.enable(path, run_id="doc")
    >>> with obs.span("work", step=1):
    ...     obs.counter("items", 3)
    >>> obs.disable()
    >>> from repro.obs.report import load_trace
    >>> [event["event"] for event in load_trace(path)][:3]
    ['run', 'span', 'metric']
    >>> obs.enabled()
    False

(The trace tail also carries a final ``proc.rss_bytes``/``proc.cpu_s``
resource gauge pair, forced out by :func:`disable`.)
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..errors import ObsError
from .events import histogram_summary, metric_event, run_event, span_event

__all__ = [
    "FLUSH_EVERY",
    "HEARTBEAT_FLUSH_S",
    "RESOURCE_INTERVAL_S",
    "Span",
    "enabled",
    "enable",
    "disable",
    "span",
    "counter",
    "gauge",
    "observe",
    "heartbeat",
    "flush",
    "current_span_id",
    "trace_path",
    "trace_run_id",
    "configured_dir",
    "set_trace_dir",
    "default_trace_dir",
    "start_run",
    "worker_parent",
    "resource_probe",
    "rss_bytes",
    "peak_rss_bytes",
    "cpu_seconds",
]

#: Sink path exported to (and lazily read by) worker processes.
ENV_FILE = "REPRO_TRACE_FILE"
#: Run id exported alongside the sink path.
ENV_RUN = "REPRO_TRACE_RUN"
#: Span id worker-process root spans parent onto.
ENV_PARENT = "REPRO_TRACE_PARENT"
#: Directory per-run sinks are created in (enables tracing when set).
ENV_DIR = "REPRO_TRACE_DIR"
#: Boolean switch enabling tracing into :func:`default_trace_dir`.
ENV_FLAG = "REPRO_TRACE"
#: Opt-in switch for ``tracemalloc`` top-site capture on the run span.
ENV_TRACEMALLOC = "REPRO_TRACEMALLOC"

#: Buffered events are written out at this buffer size (or whenever the
#: span stack empties, whichever comes first).
FLUSH_EVERY = 256

#: Throttle for the per-process resource gauges (``proc.rss_bytes``,
#: ``proc.cpu_s``): at most one pair per interval, emitted at flush
#: time and from :func:`resource_probe` calls on the hot seams.
RESOURCE_INTERVAL_S = 2.0

#: Top allocation sites captured when ``REPRO_TRACEMALLOC`` is set.
_TRACEMALLOC_TOP = 5


def default_trace_dir() -> Path:
    """Where per-run traces land when only ``REPRO_TRACE=1`` is set.

    Mirrors the campaign-store and cache layout: a ``traces`` directory
    beside ``benchmarks/results/campaigns`` and ``.../cache``.
    """
    return Path("benchmarks") / "results" / "traces"


def configured_dir() -> Path | None:
    """The trace directory requested by the environment, or ``None``.

    ``REPRO_TRACE_DIR`` names the directory explicitly;
    ``REPRO_TRACE=1`` selects :func:`default_trace_dir`.  ``None``
    means tracing is not requested — :func:`start_run` is then a no-op,
    which is the library's default state.
    """
    raw = os.environ.get(ENV_DIR)
    if raw:
        return Path(raw).expanduser()
    if os.environ.get(ENV_FLAG, "") in ("1", "true"):
        return default_trace_dir()
    return None


def set_trace_dir(path: Path | str | None) -> None:
    """Request per-run tracing into ``path`` (``None`` clears the request).

    Implemented as an environment export so the request survives into
    worker processes and subcommands; the CLI's global ``--trace`` flag
    calls this before dispatching.
    """
    if path is None:
        os.environ.pop(ENV_DIR, None)
    else:
        os.environ[ENV_DIR] = str(path)


# -- process resource readings ---------------------------------------------

#: Largest RSS observed by any probe in this process (bytes).
_PEAK_RSS = 0


def rss_bytes() -> int | None:
    """This process's current resident set size in bytes, best effort.

    Reads ``/proc/self/statm`` (Linux; field 2 is resident pages);
    falls back to ``resource.getrusage`` — whose ``ru_maxrss`` is the
    *peak*, in KiB on Linux — and returns ``None`` where neither works.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        return int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        )
    except (ImportError, OSError):  # pragma: no cover - exotic platform
        return None


def _note_rss(value: int) -> None:
    global _PEAK_RSS
    if value > _PEAK_RSS:
        _PEAK_RSS = value


def peak_rss_bytes() -> int | None:
    """The largest RSS this process has shown to any probe (bytes).

    Samples the current RSS first, so a call at run end reflects at
    least the final footprint even if no probe fired in between.
    ``None`` when the platform exposes no RSS reading at all.
    """
    current = rss_bytes()
    if current is not None:
        _note_rss(current)
    return _PEAK_RSS or None


def cpu_seconds() -> float:
    """CPU seconds consumed by this process (``time.process_time``)."""
    return time.process_time()


class Span:
    """One live unit of work; context manager that emits on close.

    Obtained from :func:`span` — not constructed by hand.  Attributes
    set via :meth:`set` and failures recorded via :meth:`fail` (or an
    exception propagating through the ``with`` block) end up on the
    emitted span event.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attrs",
        "status", "error", "cpu_s",
        "_t", "_p0", "_c0", "_tracer", "thread_id",
    )

    def __init__(
        self,
        tracer: "_Tracer",
        name: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = tracer.next_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.error: str | None = None
        #: CPU seconds consumed while open (set at close; process-wide
        #: ``time.process_time`` delta, so concurrent spans overlap).
        self.cpu_s: float | None = None
        self._t = time.time()
        self._p0 = time.perf_counter()
        self._c0 = time.process_time()
        self._tracer = tracer
        #: The opening thread — the profiler attributes that thread's
        #: stack samples to this span while it is the innermost open.
        self.thread_id = threading.get_ident()

    def set(self, **attrs: Any) -> "Span":
        """Attach (JSON-safe) attributes to this span; returns self."""
        self.attrs.update(attrs)
        return self

    def fail(self, error: str) -> "Span":
        """Mark this span failed, recording the error text; returns self."""
        self.status = "failed"
        self.error = error
        return self

    def __enter__(self) -> "Span":
        self._tracer.push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and self.status == "ok":
            self.fail(f"{exc_type.__name__}: {exc}")
        self.cpu_s = time.process_time() - self._c0
        self._tracer.close(self, time.perf_counter() - self._p0)


class _NullSpan:
    """The shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    #: Disabled spans have no identity; callers must treat ``None`` as
    #: "not traced" (e.g. the runner only annotates failure records
    #: with a span id when one exists).
    span_id = None
    name = ""
    cpu_s = None

    def set(self, **attrs: Any) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def fail(self, error: str) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Tracer:
    """Per-process event buffer + aggregation behind the module API."""

    def __init__(self, path: Path, run_id: str, parent: str | None) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.pid = os.getpid()
        #: Span id worker root spans parent onto (from the pool owner).
        self.worker_parent_id = parent
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._buffer: list[dict] = []
        self._stack: list[Span] = []
        self._counters: dict[tuple, float] = {}
        self._hists: dict[tuple, list[float]] = {}
        self._last_flush = time.monotonic()
        # First interval passes silently: short-lived tracers emit one
        # resource pair at disable() instead of noise at every flush.
        self._last_resource = time.monotonic()

    # -- span lifecycle ----------------------------------------------------

    def next_span_id(self) -> str:
        return f"{self.pid:x}.{next(self._ids):x}"

    def current_span_id(self) -> str | None:
        with self._lock:
            if self._stack:
                return self._stack[-1].span_id
        return self.worker_parent_id

    def push(self, item: Span) -> None:
        with self._lock:
            self._stack.append(item)

    def close(self, item: Span, dur_s: float) -> None:
        event = span_event(
            trace=self.run_id,
            span=item.span_id,
            parent=item.parent_id,
            name=item.name,
            t=item._t,
            dur_s=dur_s,
            pid=self.pid,
            status=item.status,
            attrs=item.attrs,
            error=item.error,
            cpu_s=item.cpu_s,
        )
        with self._lock:
            if item in self._stack:
                self._stack.remove(item)
            self._buffer.append(event)
            if not self._stack or len(self._buffer) >= FLUSH_EVERY:
                self._flush_locked()

    def open_span_paths(self) -> dict[int, tuple[str, ...]]:
        """Open-span name paths keyed by opening thread id.

        The sampling profiler's attribution source: for each thread
        that currently holds open spans, the span names in push order
        (outermost first).  Spans opened by different threads interleave
        on the shared stack; grouping by ``thread_id`` untangles them.
        """
        with self._lock:
            paths: dict[int, list[str]] = {}
            for item in self._stack:
                paths.setdefault(item.thread_id, []).append(item.name)
        return {tid: tuple(names) for tid, names in paths.items()}

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _metric_key(name: str, attrs: dict[str, Any]) -> tuple:
        return (name, tuple(sorted(attrs.items())))

    def add_counter(self, name: str, value: float, attrs: dict) -> None:
        key = self._metric_key(name, attrs)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def observe(self, name: str, value: float, attrs: dict) -> None:
        key = self._metric_key(name, attrs)
        with self._lock:
            agg = self._hists.get(key)
            if agg is None:
                self._hists[key] = [1, value, value, value]
            else:
                agg[0] += 1
                agg[1] += value
                agg[2] = min(agg[2], value)
                agg[3] = max(agg[3], value)

    def set_gauge(self, name: str, value: float, attrs: dict) -> None:
        event = metric_event(
            trace=self.run_id, name=name, kind="gauge", value=float(value),
            t=time.time(), pid=self.pid, attrs=attrs,
        )
        with self._lock:
            self._buffer.append(event)
            if len(self._buffer) >= FLUSH_EVERY:
                self._flush_locked()

    # -- the sink ----------------------------------------------------------

    def emit(self, event: dict) -> None:
        with self._lock:
            self._buffer.append(event)
            self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def flush_if_stale(self, interval_s: float) -> None:
        """Flush when the last write-out is older than ``interval_s``.

        The heartbeat probe's throttle: progress gauges reach the sink
        within about one interval without paying one I/O per event.
        """
        with self._lock:
            if time.monotonic() - self._last_flush >= interval_s:
                self._flush_locked()

    def _resources_locked(self, force: bool = False) -> None:
        """Append throttled per-process resource gauges to the buffer.

        One ``proc.rss_bytes`` + ``proc.cpu_s`` pair at most every
        :data:`RESOURCE_INTERVAL_S` — readers take the max per pid for
        peak RSS and the last write per pid for cumulative CPU.
        ``force`` bypasses the throttle (the final pair at disable).
        """
        now_mono = time.monotonic()
        if not force and (
            now_mono - self._last_resource < RESOURCE_INTERVAL_S
        ):
            return
        self._last_resource = now_mono
        now = time.time()
        rss = rss_bytes()
        if rss is not None:
            _note_rss(rss)
            self._buffer.append(
                metric_event(
                    trace=self.run_id, name="proc.rss_bytes",
                    kind="gauge", value=float(rss), t=now, pid=self.pid,
                    attrs={},
                )
            )
        self._buffer.append(
            metric_event(
                trace=self.run_id, name="proc.cpu_s", kind="gauge",
                value=time.process_time(), t=now, pid=self.pid,
                attrs={},
            )
        )

    def _flush_locked(self) -> None:
        self._last_flush = time.monotonic()
        self._resources_locked()
        now = time.time()
        for (name, attr_items), value in self._counters.items():
            self._buffer.append(
                metric_event(
                    trace=self.run_id, name=name, kind="counter",
                    value=value, t=now, pid=self.pid,
                    attrs=dict(attr_items),
                )
            )
        self._counters.clear()
        for (name, attr_items), agg in self._hists.items():
            self._buffer.append(
                metric_event(
                    trace=self.run_id, name=name, kind="histogram",
                    value=histogram_summary(agg[0], agg[1], agg[2], agg[3]),
                    t=now, pid=self.pid, attrs=dict(attr_items),
                )
            )
        self._hists.clear()
        if not self._buffer:
            return
        payload = "".join(
            json.dumps(event, sort_keys=True) + "\n"
            for event in self._buffer
        )
        self._buffer.clear()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            try:
                import fcntl

                fcntl.flock(handle, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover - non-POSIX
                pass
            handle.write(payload)


# -- module state ----------------------------------------------------------

_TRACER: _Tracer | None = None
_STATE_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False
_TRACEMALLOC_ACTIVE = False


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(flush)
        _ATEXIT_REGISTERED = True


def _maybe_start_profiler(tracer: _Tracer, fresh: bool = False) -> None:
    """Start the sampling profiler for this tracer when requested.

    Called once per tracer construction (owner enable, fork rebind,
    spawn lazy build) — never on the per-probe fast path, so the
    disabled overhead contract is untouched.  ``fresh`` (the owner
    path) clears stale shards left by an earlier run of the same id.
    """
    from . import profile as _profile

    if _profile.requested():
        _profile.ensure_started(tracer, fresh=fresh)


def _emit_tracemalloc_top(tracer: _Tracer) -> None:
    """Fold tracemalloc's top allocation sites into run-end gauges."""
    global _TRACEMALLOC_ACTIVE
    _TRACEMALLOC_ACTIVE = False
    import tracemalloc

    if not tracemalloc.is_tracing():  # pragma: no cover - stopped elsewhere
        return
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    stats = snapshot.statistics("lineno")[:_TRACEMALLOC_TOP]
    now = time.time()
    with tracer._lock:
        for rank, stat in enumerate(stats, start=1):
            frame = stat.traceback[0]
            tracer._buffer.append(
                metric_event(
                    trace=tracer.run_id,
                    name="mem.alloc_top_bytes",
                    kind="gauge",
                    value=float(stat.size),
                    t=now,
                    pid=tracer.pid,
                    attrs={
                        "site": f"{frame.filename}:{frame.lineno}",
                        "rank": rank,
                    },
                )
            )


def _active() -> _Tracer | None:
    """The process's live tracer, lazily (re)bound.

    Covers three cases: this process enabled tracing itself; a fork
    child inherited the parent's tracer object (detected by pid and
    rebound to a fresh buffer so parent events are not re-written); a
    worker found the sink exported in its environment (the spawn path).
    """
    global _TRACER
    tracer = _TRACER
    if tracer is not None:
        if tracer.pid != os.getpid():
            tracer = _Tracer(
                tracer.path, tracer.run_id, os.environ.get(ENV_PARENT)
            )
            _TRACER = tracer
            _register_atexit()
            _maybe_start_profiler(tracer)
        return tracer
    raw = os.environ.get(ENV_FILE)
    if not raw:
        return None
    with _STATE_LOCK:
        if _TRACER is None:
            _TRACER = _Tracer(
                Path(raw),
                os.environ.get(ENV_RUN, "unkeyed"),
                os.environ.get(ENV_PARENT),
            )
            _register_atexit()
            _maybe_start_profiler(_TRACER)
    return _TRACER


def enabled() -> bool:
    """True when this process is (or would lazily become) traced.

    This is the no-op fast path's guard: one global read plus one
    environ lookup — cheap enough to sit on hot seams untested.
    """
    return _TRACER is not None or ENV_FILE in os.environ


def enable(
    path: Path | str,
    run_id: str,
    name: str | None = None,
    attrs: dict[str, Any] | None = None,
    truncate: bool = True,
) -> Path:
    """Start tracing this process (and its future workers) to ``path``.

    Writes the ``run`` marker event, exports the sink/run id to the
    environment for worker propagation, and returns the sink path.
    ``truncate`` (the default) starts the sink fresh — a re-run of the
    same run id replaces its stale trace rather than appending to it.
    """
    global _TRACER, _TRACEMALLOC_ACTIVE
    if not run_id:
        raise ObsError("trace run_id must be non-empty")
    sink = Path(path)
    with _STATE_LOCK:
        if _TRACER is not None and _TRACER.pid == os.getpid():
            raise ObsError(
                f"tracing already enabled (run {_TRACER.run_id!r}); "
                "call disable() first"
            )
        sink.parent.mkdir(parents=True, exist_ok=True)
        if truncate:
            sink.write_text("", encoding="utf-8")
        _TRACER = _Tracer(sink, run_id, parent=None)
        os.environ[ENV_FILE] = str(sink)
        os.environ[ENV_RUN] = run_id
        os.environ.pop(ENV_PARENT, None)
        _register_atexit()
    _maybe_start_profiler(_TRACER, fresh=truncate)
    if os.environ.get(ENV_TRACEMALLOC, "") in ("1", "true"):
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _TRACEMALLOC_ACTIVE = True
    _TRACER.emit(
        run_event(
            trace=run_id, name=name or run_id, t=time.time(),
            pid=os.getpid(), attrs=attrs or {},
        )
    )
    return sink


def disable() -> None:
    """Flush and stop tracing; clears the worker-propagation exports.

    Run-end bookkeeping happens here too: the sampling profiler (if
    active) writes its final shard, tracemalloc's top allocation sites
    become ``mem.alloc_top_bytes`` gauges, and one final
    ``proc.rss_bytes``/``proc.cpu_s`` pair is forced out so every
    completed trace carries at least one resource sample per owner.
    """
    global _TRACER
    with _STATE_LOCK:
        tracer = _TRACER
        _TRACER = None
        for key in (ENV_FILE, ENV_RUN, ENV_PARENT):
            os.environ.pop(key, None)
    if tracer is not None and tracer.pid == os.getpid():
        from . import profile as _profile

        _profile.stop_sampler()
        if _TRACEMALLOC_ACTIVE:
            _emit_tracemalloc_top(tracer)
        with tracer._lock:
            tracer._resources_locked(force=True)
        tracer.flush()


def start_run(
    run_id: str, name: str | None = None,
    attrs: dict[str, Any] | None = None,
) -> bool:
    """Open a per-run sink if tracing is requested and not yet active.

    The :class:`~repro.api.session.Session` calls this with the
    experiment's content-hash-keyed run id; the sink becomes
    ``<trace dir>/<run_id>.jsonl``.  Returns True when this call
    enabled tracing (the caller then owns the matching
    :func:`disable`); False when tracing is unconfigured (no-op) or
    already active (the run nests into the existing trace).
    """
    if _TRACER is not None and _TRACER.pid == os.getpid():
        return False
    directory = configured_dir()
    if directory is None:
        return False
    enable(directory / f"{run_id}.jsonl", run_id, name=name, attrs=attrs)
    return True


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open a span (a context manager); no-op while tracing is disabled.

    ``attrs`` must be JSON-serialisable.  The span parents onto the
    innermost open span of this process, or — in a worker — onto the
    span id the pool owner exported via :func:`worker_parent`.
    """
    tracer = _active() if enabled() else None
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, tracer.current_span_id(), attrs)


def counter(name: str, value: float = 1.0, **attrs: Any) -> None:
    """Add ``value`` to a counter (aggregated in-process, summed by reads)."""
    if not enabled():
        return
    tracer = _active()
    if tracer is not None:
        tracer.add_counter(name, float(value), attrs)


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record a point-in-time value (written through; last write wins)."""
    if not enabled():
        return
    tracer = _active()
    if tracer is not None:
        tracer.set_gauge(name, value, attrs)


def observe(name: str, value: float, **attrs: Any) -> None:
    """Add one sample to a histogram (count/sum/min/max aggregate)."""
    if not enabled():
        return
    tracer = _active()
    if tracer is not None:
        tracer.observe(name, float(value), attrs)


#: Heartbeat gauges reach the sink at least this often (seconds).
HEARTBEAT_FLUSH_S = 1.0


def heartbeat(name: str, value: float, **attrs: Any) -> None:
    """A *live* gauge: written through and flushed at a bounded staleness.

    Identical to :func:`gauge` except the tracer also flushes when its
    last write-out is older than :data:`HEARTBEAT_FLUSH_S` — so a
    ``repro watch`` tailing the sink sees progress within about a
    second of it happening, while a burst of fast heartbeats still
    costs one I/O per interval, not one per event.  No-op (one boolean
    check) while tracing is disabled, like every other probe.
    """
    if not enabled():
        return
    tracer = _active()
    if tracer is not None:
        tracer.set_gauge(name, float(value), attrs)
        tracer.flush_if_stale(HEARTBEAT_FLUSH_S)


def resource_probe() -> None:
    """Buffer throttled resource gauges for this process, if traced.

    The hot seams (per campaign point, per fleet patient) call this so
    long runs chart worker memory growth and CPU burn without waiting
    for a flush; the :data:`RESOURCE_INTERVAL_S` throttle keeps it to
    at most one ``proc.rss_bytes``/``proc.cpu_s`` pair per interval.
    No-op (one boolean check) while tracing is disabled.
    """
    if not enabled():
        return
    tracer = _active()
    if tracer is not None:
        with tracer._lock:
            tracer._resources_locked()


def flush() -> None:
    """Write out everything buffered in this process (no-op when idle)."""
    tracer = _TRACER
    if tracer is not None and tracer.pid == os.getpid():
        tracer.flush()


def current_span_id() -> str | None:
    """The innermost open span id of this process (None untraced)."""
    tracer = _active() if enabled() else None
    return tracer.current_span_id() if tracer is not None else None


def trace_path() -> Path | None:
    """The active sink path, or None while tracing is disabled."""
    tracer = _active() if enabled() else None
    return tracer.path if tracer is not None else None


def trace_run_id() -> str | None:
    """The active run id, or None while tracing is disabled."""
    tracer = _active() if enabled() else None
    return tracer.run_id if tracer is not None else None


@contextmanager
def worker_parent(span_id: str | None) -> Iterator[None]:
    """Export ``span_id`` as the parent of worker-process root spans.

    Wrap pool *construction* in this: both ``fork`` and ``spawn``
    children capture their environment at creation, so every span a
    worker opens at its own top level parents onto the owner's span and
    the report's tree crosses the process boundary.  A ``None`` id (the
    disabled path's null span) makes this a no-op.
    """
    if span_id is None:
        yield
        return
    previous = os.environ.get(ENV_PARENT)
    os.environ[ENV_PARENT] = span_id
    # The owner's pending events must be on disk before children start
    # appending, so readers see parent spans ordered sensibly.
    flush()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_PARENT, None)
        else:
            os.environ[ENV_PARENT] = previous
