"""The paper's five biomedical case-study applications (Section II).

Every application processes 16-bit ECG samples and parks its input,
intermediate and output buffers in the (possibly faulty) data memory
through a :class:`repro.mem.fabric.MemoryFabric` — exactly the exposure
model of the paper's characterisation and Monte-Carlo experiments.

* :mod:`repro.apps.dwt` — multi-scale Discrete Wavelet Transform
  (à-trous quadratic-spline filterbank, the one used in WBSN delineators),
* :mod:`repro.apps.matrix_filter` — filtering as repeated matrix
  multiplication,
* :mod:`repro.apps.compressed_sensing` — 50 % lossy compressed sensing
  with sparse-binary sensing and an OMP gateway reconstructor,
* :mod:`repro.apps.morphology` — morphological (erosion/dilation)
  filtering for baseline and noise removal,
* :mod:`repro.apps.delineation` — wavelet delineation emitting P, Q, R,
  S, T fiducial points,

plus :mod:`repro.apps.classifier`, the heartbeat classifier the paper
mentions as the downstream consumer with statistical output (Section III).
"""

from .base import BiomedicalApp
from .classifier import HeartbeatClassifierApp
from .compressed_sensing import CompressedSensingApp
from .delineation import WaveletDelineationApp
from .dwt import DwtApp
from .matrix_filter import MatrixFilterApp
from .morphology import MorphologicalFilterApp
from .registry import EXTENSION_APPS, PAPER_APPS, make_app

__all__ = [
    "BiomedicalApp",
    "DwtApp",
    "MatrixFilterApp",
    "CompressedSensingApp",
    "MorphologicalFilterApp",
    "WaveletDelineationApp",
    "HeartbeatClassifierApp",
    "PAPER_APPS",
    "EXTENSION_APPS",
    "make_app",
]
