"""ADC front-end: millivolt traces to 16-bit two's-complement samples.

The paper's applications consume "ECG traces ... with samples of 16-bits"
(Section II).  This module models the acquisition chain of a WBSN front
end: a programmable-gain amplifier mapping a +/- ``full_scale_mv`` input
range onto the ADC's full code range, followed by ideal 16-bit
quantisation.

A key property the DREAM technique exploits (Section IV) is that real ADC
samples rarely use the full code range: the amplifier is provisioned with
headroom, so most samples carry runs of identical MSBs.  ``adc_quantize``
preserves this by defaulting to a full-scale range several times larger
than a typical ECG excursion.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError
from ..fixedpoint import Q15

__all__ = ["DEFAULT_FULL_SCALE_MV", "adc_quantize", "dac_restore"]


#: Default acquisition range (+/- 8 mV): an order of magnitude of headroom
#: over a 1-2 mV QRS complex, typical of wearable analogue front ends.
DEFAULT_FULL_SCALE_MV = 8.0


def adc_quantize(
    signal_mv: np.ndarray,
    full_scale_mv: float = DEFAULT_FULL_SCALE_MV,
) -> np.ndarray:
    """Quantise a millivolt trace to 16-bit signed samples.

    Values outside ``[-full_scale_mv, +full_scale_mv)`` saturate, as a real
    ADC would.

    Args:
        signal_mv: input voltage trace in millivolts.
        full_scale_mv: half-range of the converter in millivolts.

    Returns:
        ``int64`` array of raw samples in ``[-32768, 32767]``.
    """
    if full_scale_mv <= 0:
        raise SignalError(f"full scale must be positive, got {full_scale_mv}")
    normalised = np.asarray(signal_mv, dtype=np.float64) / full_scale_mv
    return Q15.from_float(normalised)


def dac_restore(
    samples: np.ndarray,
    full_scale_mv: float = DEFAULT_FULL_SCALE_MV,
) -> np.ndarray:
    """Map raw 16-bit samples back to millivolts (inverse of the ADC)."""
    if full_scale_mv <= 0:
        raise SignalError(f"full scale must be positive, got {full_scale_mv}")
    return Q15.to_float(np.asarray(samples)) * full_scale_mv
